package gostatic

// Shared AST helpers for the rule implementations. Everything here is
// deliberately syntactic (no go/types): the rules match on lexical shapes —
// selector chains, literal kinds, position intervals — which is exactly what
// the enforced invariants are written in terms of.

import (
	"go/ast"
	"go/token"
	"strings"
)

// calleeName flattens a call's function expression into its dotted name:
// fmt.Errorf -> "fmt.Errorf", c.pool.Get -> "c.pool.Get", append ->
// "append". Calls through anything other than identifier/selector chains
// (function results, index expressions) flatten to "".
func calleeName(fun ast.Expr) string {
	switch f := fun.(type) {
	case *ast.Ident:
		return f.Name
	case *ast.SelectorExpr:
		prefix := calleeName(f.X)
		if prefix == "" {
			return ""
		}
		return prefix + "." + f.Sel.Name
	case *ast.ParenExpr:
		return calleeName(f.X)
	}
	return ""
}

// calleeBase returns the last element of the dotted callee name ("Get" for
// c.pool.Get), or "" when the callee is not a name chain.
func calleeBase(fun ast.Expr) string {
	name := calleeName(fun)
	if i := strings.LastIndexByte(name, '.'); i >= 0 {
		return name[i+1:]
	}
	return name
}

// loopRanges collects the position intervals of every loop iteration scope
// under root: for/range bodies plus for conditions and post statements (they
// execute once per iteration too).
func loopRanges(root ast.Node) []posRange {
	var out []posRange
	ast.Inspect(root, func(n ast.Node) bool {
		switch l := n.(type) {
		case *ast.ForStmt:
			if l.Cond != nil {
				out = append(out, posRange{l.Cond.Pos(), l.Cond.End()})
			}
			if l.Post != nil {
				out = append(out, posRange{l.Post.Pos(), l.Post.End()})
			}
			out = append(out, posRange{l.Body.Pos(), l.Body.End()})
		case *ast.RangeStmt:
			out = append(out, posRange{l.Body.Pos(), l.Body.End()})
		}
		return true
	})
	return out
}

// posRange is a half-open source interval.
type posRange struct{ lo, hi token.Pos }

func (r posRange) contains(p token.Pos) bool { return p >= r.lo && p < r.hi }

// inAny reports whether p falls inside any of the ranges.
func inAny(ranges []posRange, p token.Pos) bool {
	for _, r := range ranges {
		if r.contains(p) {
			return true
		}
	}
	return false
}

// identInReturns reports whether an identifier named name appears anywhere
// inside a return statement under root — the "ownership transferred to the
// caller" escape shared by the span and pool rules.
func identInReturns(root ast.Node, name string) bool {
	found := false
	ast.Inspect(root, func(n ast.Node) bool {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return !found
		}
		for _, e := range ret.Results {
			ast.Inspect(e, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok && id.Name == name {
					found = true
				}
				return !found
			})
		}
		return !found
	})
	return found
}

// hasMethodCall reports whether root contains a call <recv>.<method>(...)
// where recv is an identifier named recvName.
func hasMethodCall(root ast.Node, recvName, method string) bool {
	found := false
	ast.Inspect(root, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return !found
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != method {
			return !found
		}
		if id, ok := sel.X.(*ast.Ident); ok && id.Name == recvName {
			found = true
		}
		return !found
	})
	return found
}

// isStringLiteral reports whether e is (possibly parenthesised) a string
// basic literal.
func isStringLiteral(e ast.Expr) bool {
	switch v := e.(type) {
	case *ast.BasicLit:
		return v.Kind == token.STRING
	case *ast.ParenExpr:
		return isStringLiteral(v.X)
	}
	return false
}

// stringLiteral returns the literal when e is a string basic literal, else
// nil.
func stringLiteral(e ast.Expr) *ast.BasicLit {
	switch v := e.(type) {
	case *ast.BasicLit:
		if v.Kind == token.STRING {
			return v
		}
	case *ast.ParenExpr:
		return stringLiteral(v.X)
	}
	return nil
}

// isNilish reports whether e is syntactically a never-preallocated slice
// origin: nil, an empty slice literal ([]T{}), a conversion of nil
// (bitset(nil)), or make with an explicit zero length and no capacity.
func isNilish(e ast.Expr) bool {
	switch v := e.(type) {
	case *ast.Ident:
		return v.Name == "nil"
	case *ast.ParenExpr:
		return isNilish(v.X)
	case *ast.CompositeLit:
		if _, isSlice := v.Type.(*ast.ArrayType); isSlice {
			return len(v.Elts) == 0
		}
	case *ast.CallExpr:
		if id, ok := v.Fun.(*ast.Ident); ok && id.Name == "make" {
			// make([]T, 0) grows on first append; any capacity argument (or a
			// non-zero length) counts as preallocated.
			if len(v.Args) == 2 {
				if lit, ok := v.Args[1].(*ast.BasicLit); ok && lit.Value == "0" {
					return true
				}
			}
			return false
		}
		// Conversions like bitset(nil).
		if len(v.Args) == 1 {
			return isNilish(v.Args[0])
		}
	}
	return false
}

// growableLocals maps, for one function body, local slice variables whose
// declaration can never carry preallocated capacity: `var x []T`,
// `x := []T{}`, `x := bitset(nil)`, `x := make([]T, 0)`. Appending to one of
// these inside a loop reallocates as it grows — the hotalloc finding.
func growableLocals(body *ast.BlockStmt) map[string]bool {
	out := make(map[string]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.DeclStmt:
			gd, ok := s.Decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				return true
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					if len(vs.Values) == 0 {
						// `var x []T` — zero value nil slice.
						if _, isSlice := vs.Type.(*ast.ArrayType); isSlice {
							out[name.Name] = true
						}
						continue
					}
					if i < len(vs.Values) && isNilish(vs.Values[i]) {
						out[name.Name] = true
					}
				}
			}
		case *ast.AssignStmt:
			if s.Tok != token.DEFINE || len(s.Lhs) != len(s.Rhs) {
				return true
			}
			for i, lhs := range s.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || id.Name == "_" {
					continue
				}
				if isNilish(s.Rhs[i]) {
					out[id.Name] = true
				}
			}
		}
		return true
	})
	return out
}
