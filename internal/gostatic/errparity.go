package gostatic

import (
	"fmt"
	"go/ast"
	"path/filepath"
	"sort"
	"strings"
)

// errparityRule guards the legacy≡compiled error-string parity of the kernel
// packages. Both compiled kernels promise bit-identical behaviour *including
// error messages* (pinned by parity tests) — but when the same fmt.Errorf
// format string is written out twice, once in the legacy file and once in
// compile.go, nothing stops an edit to one copy from silently breaking the
// contract until a parity test happens to cover that error path. The rule
// finds format-string literals passed to fmt.Errorf/fmt.Sprintf that appear
// both in a package's compile.go and in another file of the same package and
// demands they be hoisted into a shared constant, making drift a compile
// error instead of a latent test failure.
//
// Scope: only packages that contain a file named compile.go — the marker of
// a compiled-kernel package with a legacy twin (internal/pathdisc,
// internal/depend). Other packages repeat format strings freely.
type errparityRule struct{}

func (errparityRule) ID() string         { return "errparity" }
func (errparityRule) Severity() Severity { return SeverityError }
func (errparityRule) Doc() string {
	return "kernel error format strings shared by legacy and compiled files must be constants, not duplicated literals"
}

// compiledKernelFile is the filename that marks a package as having a
// compiled kernel with a legacy twin.
const compiledKernelFile = "compile.go"

func (r errparityRule) Check(p *Package) []Diagnostic {
	compiled := -1
	for i, name := range p.Filenames {
		if filepath.Base(name) == compiledKernelFile {
			compiled = i
			break
		}
	}
	if compiled < 0 {
		return nil
	}
	// Collect the fmt format literals per file: literal value -> file index
	// -> first occurrence position.
	type occurrence struct {
		fileIdx int
		pos     ast.Node
	}
	byLit := make(map[string][]occurrence)
	for i, f := range p.Files {
		idx := i
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			switch calleeName(call.Fun) {
			case "fmt.Errorf", "fmt.Sprintf":
			default:
				return true
			}
			lit := stringLiteral(call.Args[0])
			if lit == nil {
				return true
			}
			byLit[lit.Value] = append(byLit[lit.Value], occurrence{fileIdx: idx, pos: lit})
			return true
		})
	}
	var out []Diagnostic
	lits := make([]string, 0, len(byLit))
	for lit := range byLit {
		lits = append(lits, lit)
	}
	sort.Strings(lits)
	for _, lit := range lits {
		occs := byLit[lit]
		inCompiled := false
		others := make(map[string]bool)
		for _, o := range occs {
			if o.fileIdx == compiled {
				inCompiled = true
			} else {
				others[filepath.Base(p.Filenames[o.fileIdx])] = true
			}
		}
		if !inCompiled || len(others) == 0 {
			continue
		}
		names := make([]string, 0, len(others))
		for n := range others {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, o := range occs {
			if o.fileIdx != compiled {
				continue
			}
			out = append(out, p.diag(r, o.pos.Pos(),
				fmt.Sprintf("parity error format %s is duplicated in %s", lit, strings.Join(names, ", ")),
				"hoist the format into a shared package constant used by both kernels"))
		}
	}
	return out
}
