package gostatic

import (
	"fmt"
	"go/ast"
	"strings"
)

// jsontagRule enforces explicit json tags on API payload structs. The HTTP
// server's response shapes are a stability contract (README "HTTP API"
// mirrors them); an exported field without a json tag still marshals — under
// its capitalised Go name — so the wire format silently grows a
// PascalCase field no client expects and no review flags. The rule treats
// any struct with at least one json-tagged field as a declared JSON payload
// and requires every exported, non-embedded field of it to carry an explicit
// tag (json:"-" counts: it is a decision, not an omission).
//
// Structs with no json tags at all (pure in-memory types, xml payloads) are
// out of scope, as are unexported fields (encoding/json ignores them) and
// embedded fields (their tagged fields promote).
type jsontagRule struct{}

func (jsontagRule) ID() string         { return "jsontag" }
func (jsontagRule) Severity() Severity { return SeverityError }
func (jsontagRule) Doc() string {
	return "structs with json tags must tag every exported field explicitly"
}

// fieldTag returns the raw struct tag, "" when absent.
func fieldTag(f *ast.Field) string {
	if f.Tag == nil {
		return ""
	}
	return f.Tag.Value
}

func (r jsontagRule) Check(p *Package) []Diagnostic {
	var out []Diagnostic
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok || st.Fields == nil {
				return true
			}
			tagged := false
			for _, field := range st.Fields.List {
				if strings.Contains(fieldTag(field), `json:"`) {
					tagged = true
					break
				}
			}
			if !tagged {
				return true
			}
			for _, field := range st.Fields.List {
				if len(field.Names) == 0 { // embedded: promoted fields carry their own tags
					continue
				}
				if strings.Contains(fieldTag(field), `json:"`) {
					continue
				}
				for _, name := range field.Names {
					if !ast.IsExported(name.Name) {
						continue
					}
					out = append(out, p.diag(r, name.Pos(),
						fmt.Sprintf("exported field %s of JSON struct %s has no json tag", name.Name, ts.Name.Name),
						fmt.Sprintf("add `json:\"%s\"` (or json:\"-\" to exclude it)", lowerFirst(name.Name))))
				}
			}
			return true
		})
	}
	return out
}

// lowerFirst suggests the conventional camelCase wire name.
func lowerFirst(s string) string {
	if s == "" {
		return s
	}
	return strings.ToLower(s[:1]) + s[1:]
}
