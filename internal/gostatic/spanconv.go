package gostatic

import (
	"fmt"
	"go/ast"
)

// spanconvRule enforces the span lifecycle convention of the observability
// layer: every span opened with obs.StartSpan (or the facade's
// upsim.StartSpan, or a future StartSpanContext variant) must be closed by
// an End call in the same function — deferred or direct — or handed to the
// caller by returning the span. An unclosed span renders as "not ended" in
// -trace output, fails Span.WellFormed, and mis-times every parent stage;
// a span assigned to the blank identifier can never be ended at all.
//
// The rule is ownership-based rather than defer-only: the pipeline
// deliberately ends per-stage spans mid-function (step6/step7/step8 share
// one generate call), so demanding `defer` everywhere would break the
// per-stage timings. What the rule guarantees is that an End (or a transfer
// of ownership via return) exists at all — the failure mode that actually
// rots silently.
type spanconvRule struct{}

func (spanconvRule) ID() string         { return "spanconv" }
func (spanconvRule) Severity() Severity { return SeverityError }
func (spanconvRule) Doc() string {
	return "every StartSpan must have a matching End (or return the span) in the same function"
}

// isStartSpanCall reports whether call invokes a span constructor: the
// selector or identifier name StartSpan/StartSpanContext.
func isStartSpanCall(call *ast.CallExpr) bool {
	base := calleeBase(call.Fun)
	return base == "StartSpan" || base == "StartSpanContext"
}

func (r spanconvRule) Check(p *Package) []Diagnostic {
	var out []Diagnostic
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			out = append(out, r.checkFunc(p, fd)...)
		}
	}
	return out
}

func (r spanconvRule) checkFunc(p *Package, fd *ast.FuncDecl) []Diagnostic {
	var out []Diagnostic
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok || len(assign.Rhs) != 1 {
			return true
		}
		call, ok := assign.Rhs[0].(*ast.CallExpr)
		if !ok || !isStartSpanCall(call) {
			return true
		}
		// StartSpan returns (context, span): the span is the second result.
		if len(assign.Lhs) != 2 {
			return true
		}
		span, ok := assign.Lhs[1].(*ast.Ident)
		if !ok {
			return true
		}
		name := span.Name
		if name == "_" {
			out = append(out, p.diag(r, assign.Pos(),
				fmt.Sprintf("span from %s is discarded, so it can never be ended", calleeName(call.Fun)),
				"bind the span and call End (deferred for function-scoped spans)"))
			return true
		}
		if hasMethodCall(fd.Body, name, "End") || identInReturns(fd.Body, name) {
			return true
		}
		out = append(out, p.diag(r, assign.Pos(),
			fmt.Sprintf("span %q started in %s has no End call in the function and is not returned", name, fd.Name.Name),
			fmt.Sprintf("add `defer %s.End()` after the StartSpan call", name)))
		return true
	})
	return out
}
