// Package gostatic is a static-analysis engine over the repository's own Go
// source — the counterpart of internal/lint, one layer down. The lint engine
// checks the *models* the pipeline evaluates; gostatic checks the *code that
// evaluates them*: the compiled kernels' allocation-free warm paths, the
// legacy≡compiled error-string parity, the span/End pairing of the
// observability instrumentation, sync.Pool Get/Put balance in kernel code,
// and explicit json tags on every struct the HTTP API marshals. Those
// invariants were previously enforced only by convention and after-the-fact
// tests; the analyzer makes them machine-checked on every CI run (see
// cmd/upsimvet and DESIGN.md §12).
//
// The engine is built purely on the standard library — go/parser, go/ast and
// go/token, no golang.org/x/tools — so the module stays dependency-free. It
// is deliberately syntactic: no type checking, no import resolution. Every
// rule is written against invariants the source spells out lexically (the
// //upsim:hotpath annotation, the fmt.Errorf format literal, the sync.Pool
// selector chain), which keeps a repo-wide run in the low milliseconds and
// the engine trivially portable.
//
// The design mirrors internal/lint: a Rule is a named, documented check with
// a fixed default severity; a Registry holds an ordered rule set; Run
// executes every rule against every loaded package and aggregates the
// emitted Diagnostics into a severity-sorted Report with text and JSON
// renderers. The Severity scale is shared with internal/lint so both
// analyzers grade findings identically.
package gostatic

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"

	"upsim/internal/lint"
	"upsim/internal/obs"
)

// Severity re-exports the shared three-level scale of internal/lint so both
// analyzers' reports grade findings identically.
type Severity = lint.Severity

// The shared severity levels (see lint.Severity).
const (
	SeverityInfo    = lint.SeverityInfo
	SeverityWarning = lint.SeverityWarning
	SeverityError   = lint.SeverityError
)

// Diagnostic is one finding: which rule fired, how severe it is, where in
// the source it anchors, what is wrong and how to fix it.
type Diagnostic struct {
	// Rule is the ID of the rule that emitted the diagnostic.
	Rule string `json:"rule"`
	// Severity grades the finding.
	Severity Severity `json:"severity"`
	// File is the path of the offending file as loaded.
	File string `json:"file"`
	// Line and Col locate the finding (1-based).
	Line int `json:"line"`
	Col  int `json:"col"`
	// Message states the defect.
	Message string `json:"message"`
	// Hint suggests a fix (may be empty).
	Hint string `json:"hint,omitempty"`
}

// Pos renders the file:line:col anchor.
func (d Diagnostic) Pos() string { return fmt.Sprintf("%s:%d:%d", d.File, d.Line, d.Col) }

// String renders the diagnostic as one compiler-style line of analyzer
// output: pos leads so editors and CI annotations can link it.
func (d Diagnostic) String() string {
	s := fmt.Sprintf("%s: %s[%s] %s", d.Pos(), d.Severity, d.Rule, d.Message)
	if d.Hint != "" {
		s += " (fix: " + d.Hint + ")"
	}
	return s
}

// Package is one loaded Go package: its parsed files (comments included,
// tests excluded) plus the shared FileSet for positions.
type Package struct {
	// Name is the package name from the package clauses.
	Name string
	// Dir is the package directory as given to Load.
	Dir string
	// Fset is the token file set shared by every package of one Load call.
	Fset *token.FileSet
	// Files are the parsed non-test files, parallel to Filenames.
	Files []*ast.File
	// Filenames are the file paths as loaded, parallel to Files.
	Filenames []string
}

// diag is the rule implementations' shared constructor: it resolves the
// position and fills the rule identity.
func (p *Package) diag(rule Rule, pos token.Pos, message, hint string) Diagnostic {
	position := p.Fset.Position(pos)
	return Diagnostic{
		Rule:     rule.ID(),
		Severity: rule.Severity(),
		File:     position.Filename,
		Line:     position.Line,
		Col:      position.Column,
		Message:  message,
		Hint:     hint,
	}
}

// Rule is one static-analysis check over a loaded package. Implementations
// must be stateless and safe for concurrent use.
type Rule interface {
	// ID is the stable rule identifier, e.g. "hotalloc".
	ID() string
	// Severity is the default severity of the rule's diagnostics.
	Severity() Severity
	// Doc is a one-line description of what the rule checks.
	Doc() string
	// Check analyses one package and returns the rule's findings.
	Check(p *Package) []Diagnostic
}

// Registry is an ordered set of rules keyed by ID.
type Registry struct {
	rules []Rule
	byID  map[string]Rule
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{byID: make(map[string]Rule)} }

// Register adds a rule. Duplicate IDs are rejected.
func (r *Registry) Register(rule Rule) error {
	if rule == nil {
		return fmt.Errorf("gostatic: nil rule")
	}
	if rule.ID() == "" {
		return fmt.Errorf("gostatic: rule with empty ID")
	}
	if _, dup := r.byID[rule.ID()]; dup {
		return fmt.Errorf("gostatic: duplicate rule %q", rule.ID())
	}
	r.byID[rule.ID()] = rule
	r.rules = append(r.rules, rule)
	return nil
}

// Rules returns the registered rules in registration order.
func (r *Registry) Rules() []Rule {
	out := make([]Rule, len(r.rules))
	copy(out, r.rules)
	return out
}

// Rule looks up a rule by ID.
func (r *Registry) Rule(id string) (Rule, bool) {
	rule, ok := r.byID[id]
	return rule, ok
}

// Default returns a fresh registry holding every built-in rule. The registry
// is mutable, so callers may Register additional project-specific rules on
// top.
func Default() *Registry {
	r := NewRegistry()
	for _, rule := range builtinRules() {
		if err := r.Register(rule); err != nil {
			panic(err) // built-in IDs are unique by construction
		}
	}
	return r
}

// builtinRules returns the five shipped passes in registration order.
func builtinRules() []Rule {
	return []Rule{
		hotallocRule{},
		errparityRule{},
		spanconvRule{},
		poolreturnRule{},
		jsontagRule{},
	}
}

// Per-rule observability, mirroring internal/lint: every diagnostic
// increments upsim_gostatic_diagnostics_total{rule,severity}; every engine
// invocation increments upsim_gostatic_runs_total.
var (
	mRuns = obs.NewCounter("upsim_gostatic_runs_total",
		"Static-analysis driver invocations.")
	mDiags = obs.NewCounter("upsim_gostatic_diagnostics_total",
		"Static-analysis diagnostics emitted.", "rule", "severity")
)

// Run executes every registered rule against every package and aggregates
// the findings. Diagnostics are ordered by severity (errors first), then by
// position, then by rule ID, so the most urgent findings lead the report and
// the output is deterministic across runs.
func (r *Registry) Run(pkgs []*Package) (*Report, error) {
	if len(pkgs) == 0 {
		return nil, fmt.Errorf("gostatic: no packages to analyse")
	}
	mRuns.With().Inc()
	rep := &Report{RulesRun: len(r.rules), Packages: len(pkgs)}
	for _, p := range pkgs {
		for _, rule := range r.rules {
			for _, d := range rule.Check(p) {
				if d.Rule == "" {
					d.Rule = rule.ID()
				}
				mDiags.With(d.Rule, d.Severity.String()).Inc()
				rep.Diagnostics = append(rep.Diagnostics, d)
			}
		}
	}
	sort.SliceStable(rep.Diagnostics, func(i, j int) bool {
		a, b := rep.Diagnostics[i], rep.Diagnostics[j]
		if a.Severity != b.Severity {
			return a.Severity > b.Severity
		}
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Rule < b.Rule
	})
	rep.count()
	return rep, nil
}
