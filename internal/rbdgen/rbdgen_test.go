package rbdgen

import (
	"math"
	"strings"
	"testing"

	"upsim/internal/casestudy"
	"upsim/internal/core"
	"upsim/internal/depend"
	"upsim/internal/vpm"
)

// generated runs the case-study pipeline and returns generator + result +
// device availability table.
func generated(t *testing.T) (*core.Generator, *core.Result, map[string]float64) {
	t.Helper()
	m, err := casestudy.BuildModel()
	if err != nil {
		t.Fatal(err)
	}
	svc, err := casestudy.PrintingService(m)
	if err != nil {
		t.Fatal(err)
	}
	gen, err := core.NewGenerator(m, casestudy.DiagramName)
	if err != nil {
		t.Fatal(err)
	}
	res, err := gen.Generate(svc, casestudy.TableIMapping(), "u", core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	avail := map[string]float64{}
	for _, inst := range res.Source.Instances() {
		mtbf, _ := inst.Property("MTBF")
		mttr, _ := inst.Property("MTTR")
		a, err := depend.Availability(mtbf.AsReal(), mttr.AsReal())
		if err != nil {
			t.Fatal(err)
		}
		avail[inst.Name()] = a
	}
	return gen, res, avail
}

func TestTransform(t *testing.T) {
	gen, res, avail := generated(t)
	root, err := Transform(gen.Space(), "u", avail)
	if err != nil {
		t.Fatal(err)
	}
	if root.Value() != KindSeries {
		t.Errorf("root kind = %q", root.Value())
	}
	// One parallel block per atomic service.
	if got := len(root.Children()); got != 5 {
		t.Fatalf("atomic blocks = %d, want 5", got)
	}
	first, ok := root.Child("Request printing")
	if !ok || first.Value() != KindParallel {
		t.Fatalf("Request printing block missing or wrong kind")
	}
	// Two redundant paths under it.
	paths, _ := res.PathsFor("Request printing")
	if len(first.Children()) != len(paths) {
		t.Errorf("series blocks = %d, want %d", len(first.Children()), len(paths))
	}
	p0, ok := first.Child("p0")
	if !ok || p0.Value() != KindSeries {
		t.Fatal("p0 series missing")
	}
	// Path components as basic blocks, in path order.
	kids := p0.Children()
	if len(kids) != len(paths[0].Nodes) {
		t.Fatalf("basic blocks = %d, want %d", len(kids), len(paths[0].Nodes))
	}
	for i, c := range kids {
		if c.Name() != paths[0].Nodes[i] {
			t.Errorf("basic[%d] = %s, want %s", i, c.Name(), paths[0].Nodes[i])
		}
	}
	// Provenance relation back to the stored path store.
	derived := gen.Space().RelationsFrom(first, "derivedFrom")
	if len(derived) != 1 || derived[0].To().FQN() != "paths.u.Request printing" {
		t.Errorf("derivedFrom = %v", derived)
	}
	// Regenerating is rejected.
	if _, err := Transform(gen.Space(), "u", avail); err == nil {
		t.Error("duplicate transform should fail")
	}
}

func TestToBlockEvaluates(t *testing.T) {
	gen, res, avail := generated(t)
	root, err := Transform(gen.Space(), "u", avail)
	if err != nil {
		t.Fatal(err)
	}
	block, err := ToBlock(root)
	if err != nil {
		t.Fatal(err)
	}
	got, err := block.Availability()
	if err != nil {
		t.Fatal(err)
	}
	// The RBD-model evaluation must equal depend's device-only naive RBD:
	// rebuild the same structure through the analysis pipeline restricted
	// to devices.
	st := &depend.ServiceStructure{}
	for _, sp := range res.Services {
		a := depend.AtomicStructure{Name: sp.AtomicService}
		for _, p := range sp.Paths {
			a.PathSets = append(a.PathSets, depend.PathSet(p.Nodes))
		}
		st.AtomicServices = append(st.AtomicServices, a)
	}
	want, err := st.RBDApprox(avail)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("RBD model evaluation = %v, depend RBD = %v", got, want)
	}
	if got <= 0 || got > 1 {
		t.Errorf("availability out of range: %v", got)
	}
}

func TestRender(t *testing.T) {
	gen, _, avail := generated(t)
	root, err := Transform(gen.Space(), "u", avail)
	if err != nil {
		t.Fatal(err)
	}
	out := Render(root)
	for _, want := range []string{"u [series]", "Request printing [parallel]", "p0 [series]", "t1 (A="} {
		if !strings.Contains(out, want) {
			t.Errorf("rendering missing %q:\n%s", want, out)
		}
	}
}

func TestTransformErrors(t *testing.T) {
	if _, err := Transform(nil, "x", nil); err == nil {
		t.Error("nil space should fail")
	}
	s := vpm.NewSpace()
	if _, err := Transform(s, "ghost", nil); err == nil {
		t.Error("missing path store should fail")
	}
	// Missing availability for a component aborts and leaves no residue.
	gen, _, avail := generated(t)
	delete(avail, "t1")
	if _, err := Transform(gen.Space(), "u", avail); err == nil || !strings.Contains(err.Error(), "t1") {
		t.Errorf("missing availability error = %v", err)
	}
	if _, ok := gen.Space().Lookup(RootFQN("u")); ok {
		t.Error("failed transform left residue")
	}
	// Empty path store.
	empty := vpm.NewSpace()
	if _, err := empty.EnsureEntity("paths.e"); err != nil {
		t.Fatal(err)
	}
	if _, err := Transform(empty, "e", nil); err == nil {
		t.Error("empty path store should fail")
	}
}

func TestToBlockErrors(t *testing.T) {
	if _, err := ToBlock(nil); err == nil {
		t.Error("nil root should fail")
	}
	s := vpm.NewSpace()
	e, _ := s.EnsureEntity("rbd.broken")
	e.SetValue(KindSeries)
	if _, err := ToBlock(e); err == nil {
		t.Error("empty series should fail")
	}
	p, _ := s.NewEntity(e, "par")
	p.SetValue(KindParallel)
	if _, err := ToBlock(e); err == nil {
		t.Error("empty parallel should fail")
	}
	bad, _ := s.NewEntity(p, "basic")
	bad.SetValue("not-a-number")
	if _, err := ToBlock(e); err == nil {
		t.Error("unparsable basic availability should fail")
	}
}
