// Package rbdgen implements the complementary model transformation the
// paper defers to its companion report — "We present this complementary
// transformation to RBDs in [20]" (A. Dittrich, R. Rezende, "Model-driven
// evaluation of user-perceived service availability", 2013, available on
// request): the generated UPSIM is transformed into a reliability block
// diagram *model*, materialised inside the same VPM model space that holds
// the UPSIM and the discovered paths.
//
// The transformation runs on the vpm transformation machine with
// declarative rules over the path store that Step 7 left behind
// (paths.<upsim>.<atomic service>.p<i>):
//
//	rbd.<upsim>                      (series over atomic services)
//	└── <atomic service>             (parallel over redundant paths)
//	    └── p<i>                     (series over path components)
//	        └── <component>          (basic block, value = availability)
//
// The resulting entity tree is itself a model: it can be rendered (Render),
// evaluated by conversion to depend blocks (ToBlock) and inspected with
// VTCL patterns like any other model-space content.
package rbdgen

import (
	"fmt"
	"strconv"
	"strings"

	"upsim/internal/depend"
	"upsim/internal/vpm"
)

// Kind values stored on RBD entities.
const (
	KindSeries   = "series"
	KindParallel = "parallel"
	KindBasic    = "basic"
)

// RootFQN returns the model-space FQN of the generated RBD for a UPSIM.
func RootFQN(upsimName string) string { return "rbd." + upsimName }

// Transform builds the RBD model for the named UPSIM from its stored paths,
// using transformation rules on the model space. avail supplies the basic
// block availabilities keyed by component name (device names; the stored
// path strings carry devices — connectors are annotated onto the series
// blocks by the caller if needed, see depend.FromResult for the full
// component model).
func Transform(space *vpm.ModelSpace, upsimName string, avail map[string]float64) (*vpm.Entity, error) {
	if space == nil {
		return nil, fmt.Errorf("rbdgen: nil model space")
	}
	pathsRoot, ok := space.Lookup("paths." + upsimName)
	if !ok {
		return nil, fmt.Errorf("rbdgen: no stored paths for UPSIM %q (generate it first)", upsimName)
	}
	if _, dup := space.Lookup(RootFQN(upsimName)); dup {
		return nil, fmt.Errorf("rbdgen: RBD for %q already generated", upsimName)
	}
	root, err := space.EnsureEntity(RootFQN(upsimName))
	if err != nil {
		return nil, err
	}
	root.SetValue(KindSeries)

	machine := vpm.NewMachine(space)

	// Rule 1: every atomic service below the path store becomes a parallel
	// block under the RBD root.
	atomicRule := &vpm.Rule{
		Name: "atomic-to-parallel",
		Pattern: &vpm.Pattern{
			Name:        "atomics",
			Vars:        []string{"A"},
			Constraints: []vpm.Constraint{vpm.Below{Var: "A", AncestorFQN: pathsRoot.FQN()}},
		},
		When: func(_ *vpm.ModelSpace, b vpm.Binding) bool {
			return b["A"].Parent() == pathsRoot
		},
		Action: func(s *vpm.ModelSpace, b vpm.Binding) error {
			e, err := s.NewEntity(root, b["A"].Name())
			if err != nil {
				return err
			}
			e.SetValue(KindParallel)
			_, err = s.NewRelation("derivedFrom", e, b["A"])
			return err
		},
	}
	// Rule 2: every stored path becomes a series block under its atomic's
	// parallel block, with one basic block per path component.
	pathRule := &vpm.Rule{
		Name: "path-to-series",
		Pattern: &vpm.Pattern{
			Name:        "paths",
			Vars:        []string{"P"},
			Constraints: []vpm.Constraint{vpm.Below{Var: "P", AncestorFQN: pathsRoot.FQN()}},
		},
		When: func(_ *vpm.ModelSpace, b vpm.Binding) bool {
			p := b["P"]
			return p.Parent() != pathsRoot && p.Value() != ""
		},
		Action: func(s *vpm.ModelSpace, b vpm.Binding) error {
			p := b["P"]
			parallel, ok := root.Child(p.Parent().Name())
			if !ok {
				return fmt.Errorf("rbdgen: parallel block for %q missing", p.Parent().Name())
			}
			series, err := s.NewEntity(parallel, p.Name())
			if err != nil {
				return err
			}
			series.SetValue(KindSeries)
			for _, comp := range strings.Split(p.Value(), "—") {
				basic, err := s.NewEntity(series, comp)
				if err != nil {
					return err
				}
				a, ok := avail[comp]
				if !ok {
					return fmt.Errorf("rbdgen: no availability for component %q", comp)
				}
				basic.SetValue(strconv.FormatFloat(a, 'g', -1, 64))
			}
			return nil
		},
	}
	if err := machine.AddRule(atomicRule); err != nil {
		return nil, err
	}
	if err := machine.AddRule(pathRule); err != nil {
		return nil, err
	}
	if _, err := machine.RunSequence("atomic-to-parallel", "path-to-series"); err != nil {
		// Leave no partial RBD behind.
		_ = space.DeleteEntity(root)
		return nil, err
	}
	if len(root.Children()) == 0 {
		_ = space.DeleteEntity(root)
		return nil, fmt.Errorf("rbdgen: UPSIM %q has no stored atomic services", upsimName)
	}
	return root, nil
}

// ToBlock converts a generated RBD entity tree into an evaluatable
// depend.Block.
func ToBlock(root *vpm.Entity) (depend.Block, error) {
	if root == nil {
		return nil, fmt.Errorf("rbdgen: nil RBD root")
	}
	switch root.Value() {
	case KindSeries:
		kids := root.Children()
		if len(kids) == 0 {
			return nil, fmt.Errorf("rbdgen: empty series block %q", root.FQN())
		}
		var s depend.Series
		for _, k := range kids {
			b, err := ToBlock(k)
			if err != nil {
				return nil, err
			}
			s = append(s, b)
		}
		return s, nil
	case KindParallel:
		kids := root.Children()
		if len(kids) == 0 {
			return nil, fmt.Errorf("rbdgen: empty parallel block %q", root.FQN())
		}
		var p depend.Parallel
		for _, k := range kids {
			b, err := ToBlock(k)
			if err != nil {
				return nil, err
			}
			p = append(p, b)
		}
		return p, nil
	default:
		a, err := strconv.ParseFloat(root.Value(), 64)
		if err != nil {
			return nil, fmt.Errorf("rbdgen: basic block %q has no availability: %v", root.FQN(), err)
		}
		return depend.Basic{Name: root.Name(), A: a}, nil
	}
}

// Render prints the RBD tree as an indented diagram.
func Render(root *vpm.Entity) string {
	var b strings.Builder
	var rec func(e *vpm.Entity, depth int)
	rec = func(e *vpm.Entity, depth int) {
		indent := strings.Repeat("  ", depth)
		label := e.Name()
		switch e.Value() {
		case KindSeries, KindParallel:
			fmt.Fprintf(&b, "%s%s [%s]\n", indent, label, e.Value())
		default:
			fmt.Fprintf(&b, "%s%s (A=%s)\n", indent, label, e.Value())
		}
		for _, c := range e.Children() {
			rec(c, depth+1)
		}
	}
	rec(root, 0)
	return b.String()
}
