package importers

import (
	"strings"
	"testing"

	"upsim/internal/mapping"
	"upsim/internal/uml"
	"upsim/internal/vpm"
)

// fixtureModel builds a small but complete UML model: availability profile,
// two classes, one association, one diagram with three instances and two
// links, and one two-action activity.
func fixtureModel(t *testing.T) *uml.Model {
	t.Helper()
	m := uml.NewModel("campus")
	p := uml.NewProfile("availability")
	comp, err := p.DefineAbstractStereotype("Component", uml.MetaclassNone)
	if err != nil {
		t.Fatal(err)
	}
	if err := comp.AddAttribute("MTBF", uml.KindReal); err != nil {
		t.Fatal(err)
	}
	if err := comp.AddAttribute("MTTR", uml.KindReal); err != nil {
		t.Fatal(err)
	}
	dev, err := p.DefineSubStereotype("Device", uml.MetaclassClass, comp)
	if err != nil {
		t.Fatal(err)
	}
	conn, err := p.DefineSubStereotype("Connector", uml.MetaclassAssociation, comp)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.AddProfile(p); err != nil {
		t.Fatal(err)
	}

	cls, _ := m.AddClass("Comp")
	app, _ := cls.Apply(dev)
	_ = app.Set("MTBF", uml.RealValue(3000))
	_ = app.Set("MTTR", uml.RealValue(24))
	srv, _ := m.AddClass("Server")
	app2, _ := srv.Apply(dev)
	_ = app2.Set("MTBF", uml.RealValue(60000))
	_ = app2.Set("MTTR", uml.RealValue(0.1))
	a, _ := m.AddAssociation("Comp-Server", cls, srv)
	capp, _ := a.Apply(conn)
	_ = capp.Set("MTBF", uml.RealValue(1e6))
	_ = capp.Set("MTTR", uml.RealValue(0.1))

	d := m.NewObjectDiagram("infrastructure")
	t1, _ := d.AddInstance("t1", cls)
	t2, _ := d.AddInstance("t2", cls)
	printS, _ := d.AddInstance("printS", srv)
	if _, err := d.Connect(t1, printS, a); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Connect(t2, printS, a); err != nil {
		t.Fatal(err)
	}

	act, _ := m.NewActivity("printing")
	a1, _ := act.AddAction("Request printing")
	a2, _ := act.AddAction("Send documents")
	fin := act.AddFinal()
	_ = act.Sequence(act.Initial(), a1, a2, fin)
	return m
}

func importFixture(t *testing.T) (*vpm.ModelSpace, *uml.Model) {
	t.Helper()
	s := vpm.NewSpace()
	im, err := NewUMLImporter(s)
	if err != nil {
		t.Fatal(err)
	}
	m := fixtureModel(t)
	if err := im.Import(m); err != nil {
		t.Fatal(err)
	}
	return s, m
}

func TestUMLImportEntities(t *testing.T) {
	s, _ := importFixture(t)

	// Metamodel present.
	for _, meta := range []string{MetaClass, MetaAssociation, MetaInstance, MetaActivity, MetaAction} {
		if _, ok := s.Lookup(NSUMLMetamodel + "." + meta); !ok {
			t.Errorf("metamodel entity %s missing", meta)
		}
	}

	// Classes typed and attributes materialised with values.
	ce, ok := s.Lookup(ClassFQN("campus", "Comp"))
	if !ok {
		t.Fatal("class entity missing")
	}
	if !ce.IsInstanceOf(NSUMLMetamodel + "." + MetaClass) {
		t.Error("class not typed by metamodel")
	}
	mtbf, ok := ce.Child("MTBF")
	if !ok || mtbf.Value() != "3000" {
		t.Errorf("Comp MTBF entity = %v", mtbf)
	}
	if !mtbf.IsInstanceOf(NSUMLMetamodel + "." + MetaAttribute) {
		t.Error("attribute not typed")
	}

	// Stereotype relations.
	sts := s.RelationsFrom(ce, RelStereotype)
	if len(sts) != 1 || sts[0].To().Name() != "Device" {
		t.Errorf("class stereotype relations = %v", sts)
	}

	// Association entity with ends.
	ae, ok := s.Lookup("models.campus.associations.Comp-Server")
	if !ok {
		t.Fatal("association entity missing")
	}
	endA := s.RelationsFrom(ae, RelEndA)
	endB := s.RelationsFrom(ae, RelEndB)
	if len(endA) != 1 || endA[0].To().Name() != "Comp" {
		t.Errorf("endA = %v", endA)
	}
	if len(endB) != 1 || endB[0].To().Name() != "Server" {
		t.Errorf("endB = %v", endB)
	}
	if att, ok := ae.Child("MTBF"); !ok || att.Value() != "1e+06" {
		t.Errorf("association MTBF = %v (%v)", att.Value(), ok)
	}

	// Instances with classifier relations and links.
	ie, ok := s.Lookup(InstanceFQN("campus", "infrastructure", "t1"))
	if !ok {
		t.Fatal("instance entity missing")
	}
	cls := s.RelationsFrom(ie, RelClassifier)
	if len(cls) != 1 || cls[0].To() != ce {
		t.Errorf("classifier = %v", cls)
	}
	links := s.RelationsOf(ie, RelLink)
	if len(links) != 1 || links[0].Value() != "Comp-Server" {
		t.Errorf("links of t1 = %v", links)
	}

	// Activity nodes: one entity per node, actions by name, flows wired.
	actFQN := ActivityFQN("campus", "printing")
	ae2, ok := s.Lookup(actFQN)
	if !ok {
		t.Fatal("activity entity missing")
	}
	if !ae2.IsInstanceOf(NSUMLMetamodel + "." + MetaActivity) {
		t.Error("activity not typed")
	}
	action, ok := s.Lookup(actFQN + ".Request printing")
	if !ok {
		t.Fatal("action entity missing")
	}
	flows := s.RelationsFrom(action, RelFlow)
	if len(flows) != 1 || flows[0].To().Name() != "Send documents" {
		t.Errorf("flows = %v", flows)
	}
	if _, ok := s.Lookup(actFQN + ".initial"); !ok {
		t.Error("initial node entity missing")
	}
	if _, ok := s.Lookup(actFQN + ".final1"); !ok {
		t.Error("final node entity missing")
	}
}

func TestUMLImportErrors(t *testing.T) {
	s := vpm.NewSpace()
	im, err := NewUMLImporter(s)
	if err != nil {
		t.Fatal(err)
	}
	if err := im.Import(nil); err == nil {
		t.Error("nil model should fail")
	}
	if err := im.Import(uml.NewModel("")); err == nil {
		t.Error("unnamed model should fail")
	}
	if err := im.Import(uml.NewModel("a.b")); err == nil {
		t.Error("dotted model name should fail")
	}
	m := fixtureModel(t)
	if err := im.Import(m); err != nil {
		t.Fatal(err)
	}
	if err := im.Import(m); err == nil {
		t.Error("double import should fail")
	}
	if _, err := NewUMLImporter(nil); err == nil {
		t.Error("nil space should fail")
	}
}

func TestUMLImportUnregisteredProfile(t *testing.T) {
	// A stereotype applied from a profile that is not registered with the
	// model cannot be resolved to an entity.
	m := uml.NewModel("loose")
	p := uml.NewProfile("other")
	st, _ := p.DefineStereotype("Tag", uml.MetaclassClass)
	c, _ := m.AddClass("C")
	if _, err := c.Apply(st); err != nil {
		t.Fatal(err)
	}
	s := vpm.NewSpace()
	im, _ := NewUMLImporter(s)
	if err := im.Import(m); err == nil || !strings.Contains(err.Error(), "unregistered profile") {
		t.Errorf("expected unregistered-profile error, got %v", err)
	}
}

func tableIMapping(t *testing.T) *mapping.Mapping {
	t.Helper()
	mp := mapping.New()
	for _, p := range []mapping.Pair{
		{AtomicService: "Request printing", Requester: "t1", Provider: "printS"},
		{AtomicService: "Send documents", Requester: "printS", Provider: "t1"},
	} {
		if err := mp.Add(p); err != nil {
			t.Fatal(err)
		}
	}
	return mp
}

func TestMappingImport(t *testing.T) {
	s, _ := importFixture(t)
	mi, err := NewMappingImporter(s)
	if err != nil {
		t.Fatal(err)
	}
	mp := tableIMapping(t)
	diagram := DiagramFQN("campus", "infrastructure")
	if err := mi.Import("printing-t1", mp, diagram); err != nil {
		t.Fatal(err)
	}
	pe, ok := s.Lookup(PairFQN("printing-t1", "Request printing"))
	if !ok {
		t.Fatal("pair entity missing")
	}
	if !pe.IsInstanceOf(NSMappingMetamodel + "." + MetaPair) {
		t.Error("pair not typed by mapping metamodel")
	}
	req, prov, err := ResolvePair(s, "printing-t1", "Request printing")
	if err != nil {
		t.Fatal(err)
	}
	if req.Name() != "t1" || prov.Name() != "printS" {
		t.Errorf("resolved pair = %s, %s", req, prov)
	}
	if req.FQN() != InstanceFQN("campus", "infrastructure", "t1") {
		t.Errorf("requester resolves to %s", req.FQN())
	}
}

func TestMappingImportErrors(t *testing.T) {
	s, _ := importFixture(t)
	mi, _ := NewMappingImporter(s)
	diagram := DiagramFQN("campus", "infrastructure")

	if err := mi.Import("x", nil, diagram); err == nil {
		t.Error("nil mapping should fail")
	}
	if err := mi.Import("", tableIMapping(t), diagram); err == nil {
		t.Error("empty name should fail")
	}
	if err := mi.Import("a.b", tableIMapping(t), diagram); err == nil {
		t.Error("dotted name should fail")
	}
	if err := mi.Import("x", tableIMapping(t), "models.ghost.diagrams.d"); err == nil {
		t.Error("missing diagram should fail")
	}

	// Dangling component reference: import must fail and leave no residue.
	bad := mapping.New()
	_ = bad.Add(mapping.Pair{AtomicService: "s", Requester: "ghost", Provider: "printS"})
	err := mi.Import("dangling", bad, diagram)
	if err == nil || !strings.Contains(err.Error(), "ghost") {
		t.Errorf("dangling requester error = %v", err)
	}
	if _, ok := s.Lookup(NSMappings + ".dangling"); ok {
		t.Error("failed import left residue in model space")
	}
	bad2 := mapping.New()
	_ = bad2.Add(mapping.Pair{AtomicService: "s", Requester: "t1", Provider: "ghost"})
	if err := mi.Import("dangling2", bad2, diagram); err == nil {
		t.Error("dangling provider should fail")
	}

	// Duplicate mapping name.
	if err := mi.Import("dup", tableIMapping(t), diagram); err != nil {
		t.Fatal(err)
	}
	if err := mi.Import("dup", tableIMapping(t), diagram); err == nil {
		t.Error("duplicate mapping name should fail")
	}
	if _, err := NewMappingImporter(nil); err == nil {
		t.Error("nil space should fail")
	}
}

func TestResolvePairErrors(t *testing.T) {
	s, _ := importFixture(t)
	if _, _, err := ResolvePair(s, "ghost", "x"); err == nil {
		t.Error("unknown pair should fail")
	}
	// A malformed pair (extra requester relation) is reported.
	mi, _ := NewMappingImporter(s)
	if err := mi.Import("m", tableIMapping(t), DiagramFQN("campus", "infrastructure")); err != nil {
		t.Fatal(err)
	}
	pe := s.MustLookup(PairFQN("m", "Request printing"))
	t2 := s.MustLookup(InstanceFQN("campus", "infrastructure", "t2"))
	if _, err := s.NewRelation(RelRequester, pe, t2); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ResolvePair(s, "m", "Request printing"); err == nil {
		t.Error("pair with two requesters should fail")
	}
}
