// Package importers implements Steps 5 and 6 of the UPSIM methodology: the
// UML native importer that materialises UML models as VPM entities and
// relations ("VIATRA2 creates entities for model elements and their
// relations"), and the custom service-mapping importer built on a dedicated
// mapping metamodel (Section V-C).
//
// Namespace layout in the model space:
//
//	metamodel.uml.*          UML metamodel entities (Class, Association, …)
//	metamodel.mapping.*      service-mapping metamodel (ServiceMappingPair)
//	models.<model>.profiles.<profile>.<stereotype>
//	models.<model>.classes.<class>.<attribute>
//	models.<model>.associations.<association>.<attribute>
//	models.<model>.diagrams.<diagram>.<instance>
//	models.<model>.activities.<activity>.<node>
//	mappings.<name>.<atomic service>
//
// Relations: "stereotype" (class/association → stereotype), "endA"/"endB"
// (association → class), "classifier" (instance → class), "link"
// (instance ↔ instance, value = association name), "flow" (activity node →
// node), "requester"/"provider" (mapping pair → instance).
package importers

import (
	"fmt"
	"strings"

	"upsim/internal/uml"
	"upsim/internal/vpm"
)

// Namespace roots and relation names used by the importers. They are
// exported so that downstream transformations (package core) can navigate
// the model space without hard-coding strings.
const (
	NSUMLMetamodel     = "metamodel.uml"
	NSMappingMetamodel = "metamodel.mapping"
	NSModels           = "models"
	NSMappings         = "mappings"

	RelStereotype = "stereotype"
	RelEndA       = "endA"
	RelEndB       = "endB"
	RelClassifier = "classifier"
	RelLink       = "link"
	RelFlow       = "flow"
	RelRequester  = "requester"
	RelProvider   = "provider"
)

// UML metamodel entity names under NSUMLMetamodel.
const (
	MetaClass       = "Class"
	MetaAssociation = "Association"
	MetaInstance    = "InstanceSpecification"
	MetaProfile     = "Profile"
	MetaStereotype  = "Stereotype"
	MetaAttribute   = "Attribute"
	MetaActivity    = "Activity"
	MetaInitial     = "Initial"
	MetaFinal       = "Final"
	MetaAction      = "Action"
	MetaFork        = "Fork"
	MetaJoin        = "Join"
)

// MetaPair is the single entity of the mapping metamodel.
const MetaPair = "ServiceMappingPair"

// EnsureUMLMetamodel creates the UML metamodel entities if absent and
// returns the metamodel root.
func EnsureUMLMetamodel(s *vpm.ModelSpace) (*vpm.Entity, error) {
	root, err := s.EnsureEntity(NSUMLMetamodel)
	if err != nil {
		return nil, err
	}
	for _, n := range []string{
		MetaClass, MetaAssociation, MetaInstance, MetaProfile, MetaStereotype,
		MetaAttribute, MetaActivity, MetaInitial, MetaFinal, MetaAction,
		MetaFork, MetaJoin,
	} {
		if _, err := s.EnsureEntity(NSUMLMetamodel + "." + n); err != nil {
			return nil, err
		}
	}
	return root, nil
}

// UMLImporter imports uml.Model resources into a model space. It mirrors
// VIATRA2's "native UML importer" (Step 5): every profile, stereotype,
// class, association, instance specification, link and activity node becomes
// an entity or relation typed by the UML metamodel.
type UMLImporter struct {
	space *vpm.ModelSpace
}

// NewUMLImporter creates an importer bound to a model space, materialising
// the UML metamodel on construction.
func NewUMLImporter(s *vpm.ModelSpace) (*UMLImporter, error) {
	if s == nil {
		return nil, fmt.Errorf("importers: nil model space")
	}
	if _, err := EnsureUMLMetamodel(s); err != nil {
		return nil, err
	}
	return &UMLImporter{space: s}, nil
}

// Import materialises the model under models.<model name>. Importing two
// models with the same name is an error.
func (im *UMLImporter) Import(m *uml.Model) error {
	if m == nil {
		return fmt.Errorf("importers: nil model")
	}
	if m.Name() == "" {
		return fmt.Errorf("importers: model without name")
	}
	if strings.Contains(m.Name(), ".") {
		return fmt.Errorf("importers: model name %q contains namespace separator", m.Name())
	}
	s := im.space
	modelsRoot, err := s.EnsureEntity(NSModels)
	if err != nil {
		return err
	}
	if _, dup := modelsRoot.Child(m.Name()); dup {
		return fmt.Errorf("importers: model %q already imported", m.Name())
	}
	modelRoot, err := s.NewEntity(modelsRoot, m.Name())
	if err != nil {
		return err
	}

	typeOf := func(inst *vpm.Entity, meta string) error {
		return s.SetInstanceOf(inst, s.MustLookup(NSUMLMetamodel+"."+meta))
	}

	// Profiles and stereotypes.
	profilesRoot, err := s.NewEntity(modelRoot, "profiles")
	if err != nil {
		return err
	}
	stereoEnt := make(map[*uml.Stereotype]*vpm.Entity)
	for _, p := range m.Profiles() {
		pe, err := s.NewEntity(profilesRoot, p.Name())
		if err != nil {
			return err
		}
		if err := typeOf(pe, MetaProfile); err != nil {
			return err
		}
		for _, st := range p.Stereotypes() {
			se, err := s.NewEntity(pe, st.Name())
			if err != nil {
				return err
			}
			if err := typeOf(se, MetaStereotype); err != nil {
				return err
			}
			stereoEnt[st] = se
		}
	}

	// Classes with their static attribute values.
	classesRoot, err := s.NewEntity(modelRoot, "classes")
	if err != nil {
		return err
	}
	classEnt := make(map[*uml.Class]*vpm.Entity)
	for _, c := range m.Classes() {
		ce, err := s.NewEntity(classesRoot, c.Name())
		if err != nil {
			return err
		}
		if err := typeOf(ce, MetaClass); err != nil {
			return err
		}
		classEnt[c] = ce
		for _, app := range c.Applications() {
			se, ok := stereoEnt[app.Stereotype()]
			if !ok {
				return fmt.Errorf("importers: class %s applies stereotype %s from an unregistered profile",
					c.Name(), app.Stereotype().Name())
			}
			if _, err := s.NewRelation(RelStereotype, ce, se); err != nil {
				return err
			}
		}
		if err := im.importAttributes(ce, c.PropertyNames(), c.Property); err != nil {
			return err
		}
	}

	// Associations.
	assocRoot, err := s.NewEntity(modelRoot, "associations")
	if err != nil {
		return err
	}
	for _, a := range m.Associations() {
		ae, err := s.NewEntity(assocRoot, a.Name())
		if err != nil {
			return err
		}
		if err := typeOf(ae, MetaAssociation); err != nil {
			return err
		}
		endA, endB := a.Ends()
		if _, err := s.NewRelation(RelEndA, ae, classEnt[endA]); err != nil {
			return err
		}
		if _, err := s.NewRelation(RelEndB, ae, classEnt[endB]); err != nil {
			return err
		}
		for _, app := range a.Applications() {
			se, ok := stereoEnt[app.Stereotype()]
			if !ok {
				return fmt.Errorf("importers: association %s applies stereotype %s from an unregistered profile",
					a.Name(), app.Stereotype().Name())
			}
			if _, err := s.NewRelation(RelStereotype, ae, se); err != nil {
				return err
			}
		}
		var names []string
		for _, app := range a.Applications() {
			for _, def := range app.Stereotype().AllAttributes() {
				names = append(names, def.Name)
			}
		}
		if err := im.importAttributes(ae, names, a.Property); err != nil {
			return err
		}
	}

	// Object diagrams: instances and links.
	diagramsRoot, err := s.NewEntity(modelRoot, "diagrams")
	if err != nil {
		return err
	}
	for _, d := range m.Diagrams() {
		de, err := s.NewEntity(diagramsRoot, d.Name())
		if err != nil {
			return err
		}
		instEnt := make(map[string]*vpm.Entity, d.NumInstances())
		for _, inst := range d.Instances() {
			ie, err := s.NewEntity(de, inst.Name())
			if err != nil {
				return err
			}
			if err := typeOf(ie, MetaInstance); err != nil {
				return err
			}
			if _, err := s.NewRelation(RelClassifier, ie, classEnt[inst.Classifier()]); err != nil {
				return err
			}
			instEnt[inst.Name()] = ie
		}
		for _, l := range d.Links() {
			a, b := l.Ends()
			r, err := s.NewRelation(RelLink, instEnt[a.Name()], instEnt[b.Name()])
			if err != nil {
				return err
			}
			r.SetValue(l.Association().Name())
		}
	}

	// Activities: atomic services become entities of the model space
	// ("Also, atomic services are transformed into entities of the model
	// space", Step 5).
	activitiesRoot, err := s.NewEntity(modelRoot, "activities")
	if err != nil {
		return err
	}
	for _, act := range m.Activities() {
		ae, err := s.NewEntity(activitiesRoot, act.Name())
		if err != nil {
			return err
		}
		if err := typeOf(ae, MetaActivity); err != nil {
			return err
		}
		nodeEnt := make(map[*uml.ActivityNode]*vpm.Entity)
		counters := map[uml.NodeKind]int{}
		for _, n := range act.Nodes() {
			var name, meta string
			switch n.Kind() {
			case uml.NodeAction:
				name, meta = n.Name(), MetaAction
			case uml.NodeInitial:
				name, meta = "initial", MetaInitial
			case uml.NodeFinal:
				counters[uml.NodeFinal]++
				name, meta = fmt.Sprintf("final%d", counters[uml.NodeFinal]), MetaFinal
			case uml.NodeFork:
				counters[uml.NodeFork]++
				name, meta = fmt.Sprintf("fork%d", counters[uml.NodeFork]), MetaFork
			case uml.NodeJoin:
				counters[uml.NodeJoin]++
				name, meta = fmt.Sprintf("join%d", counters[uml.NodeJoin]), MetaJoin
			}
			ne, err := s.NewEntity(ae, name)
			if err != nil {
				return err
			}
			if err := typeOf(ne, meta); err != nil {
				return err
			}
			nodeEnt[n] = ne
		}
		for _, n := range act.Nodes() {
			for _, tgt := range n.Outgoing() {
				if _, err := s.NewRelation(RelFlow, nodeEnt[n], nodeEnt[tgt]); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// importAttributes materialises named attribute values as child entities
// typed Attribute, with the value as entity payload.
func (im *UMLImporter) importAttributes(parent *vpm.Entity, names []string, get func(string) (uml.Value, bool)) error {
	seen := make(map[string]bool)
	for _, n := range names {
		if seen[n] {
			continue
		}
		seen[n] = true
		v, ok := get(n)
		if !ok {
			continue
		}
		ae, err := im.space.NewEntity(parent, n)
		if err != nil {
			return err
		}
		ae.SetValue(v.String())
		if err := im.space.SetInstanceOf(ae, im.space.MustLookup(NSUMLMetamodel+"."+MetaAttribute)); err != nil {
			return err
		}
	}
	return nil
}

// InstanceFQN returns the model-space FQN of an instance specification
// imported from the named model and diagram.
func InstanceFQN(model, diagram, instance string) string {
	return NSModels + "." + model + ".diagrams." + diagram + "." + instance
}

// DiagramFQN returns the model-space FQN of an imported object diagram.
func DiagramFQN(model, diagram string) string {
	return NSModels + "." + model + ".diagrams." + diagram
}

// ClassFQN returns the model-space FQN of an imported class.
func ClassFQN(model, class string) string {
	return NSModels + "." + model + ".classes." + class
}

// ActivityFQN returns the model-space FQN of an imported activity.
func ActivityFQN(model, activity string) string {
	return NSModels + "." + model + ".activities." + activity
}
