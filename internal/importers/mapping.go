package importers

import (
	"fmt"
	"strings"

	"upsim/internal/mapping"
	"upsim/internal/vpm"
)

// MappingImporter implements Step 6: "Import service mapping pairs to the
// VIATRA2 model space using a custom service mapping importer." The paper's
// importer "parses the XML file, traverses the content tree and finds
// appropriate VPM entities in the metamodel corresponding to the type of
// each element"; this importer does the same against an already-parsed
// mapping.Mapping (the XML codec lives in package mapping).
//
// Every pair becomes an entity mappings.<name>.<atomic service> typed by
// metamodel.mapping.ServiceMappingPair, with "requester" and "provider"
// relations resolved against the instance entities of an imported
// infrastructure diagram. Dangling component references are reported as
// errors — the mapping is the one input whose hand-edited nature makes this
// the most common failure in practice.
type MappingImporter struct {
	space *vpm.ModelSpace
}

// NewMappingImporter creates the importer, materialising the mapping
// metamodel.
func NewMappingImporter(s *vpm.ModelSpace) (*MappingImporter, error) {
	if s == nil {
		return nil, fmt.Errorf("importers: nil model space")
	}
	if _, err := s.EnsureEntity(NSMappingMetamodel + "." + MetaPair); err != nil {
		return nil, err
	}
	return &MappingImporter{space: s}, nil
}

// Import materialises the mapping under mappings.<name>, resolving component
// ids against the instances of the object diagram at diagramFQN (see
// DiagramFQN). Import is atomic: on error, no partial mapping remains in the
// space.
func (im *MappingImporter) Import(name string, m *mapping.Mapping, diagramFQN string) error {
	if m == nil {
		return fmt.Errorf("importers: nil mapping")
	}
	if name == "" || strings.Contains(name, ".") {
		return fmt.Errorf("importers: invalid mapping name %q", name)
	}
	s := im.space
	diagram, ok := s.Lookup(diagramFQN)
	if !ok {
		return fmt.Errorf("importers: mapping %q: infrastructure diagram %q not in model space (run the UML importer first)",
			name, diagramFQN)
	}
	mappingsRoot, err := s.EnsureEntity(NSMappings)
	if err != nil {
		return err
	}
	if _, dup := mappingsRoot.Child(name); dup {
		return fmt.Errorf("importers: mapping %q already imported", name)
	}
	pairType := s.MustLookup(NSMappingMetamodel + "." + MetaPair)

	root, err := s.NewEntity(mappingsRoot, name)
	if err != nil {
		return err
	}
	abort := func(cause error) error {
		_ = s.DeleteEntity(root)
		return cause
	}
	for _, p := range m.Pairs() {
		pe, err := s.NewEntity(root, p.AtomicService)
		if err != nil {
			return abort(err)
		}
		if err := s.SetInstanceOf(pe, pairType); err != nil {
			return abort(err)
		}
		req, ok := diagram.Child(p.Requester)
		if !ok {
			return abort(fmt.Errorf("importers: mapping %q: atomic service %q: requester %q not found in diagram %q",
				name, p.AtomicService, p.Requester, diagramFQN))
		}
		prov, ok := diagram.Child(p.Provider)
		if !ok {
			return abort(fmt.Errorf("importers: mapping %q: atomic service %q: provider %q not found in diagram %q",
				name, p.AtomicService, p.Provider, diagramFQN))
		}
		if _, err := s.NewRelation(RelRequester, pe, req); err != nil {
			return abort(err)
		}
		if _, err := s.NewRelation(RelProvider, pe, prov); err != nil {
			return abort(err)
		}
	}
	return nil
}

// PairFQN returns the model-space FQN of an imported service mapping pair.
func PairFQN(mappingName, atomicService string) string {
	return NSMappings + "." + mappingName + "." + atomicService
}

// ResolvePair returns the requester and provider instance entities of an
// imported pair.
func ResolvePair(s *vpm.ModelSpace, mappingName, atomicService string) (req, prov *vpm.Entity, err error) {
	pe, ok := s.Lookup(PairFQN(mappingName, atomicService))
	if !ok {
		return nil, nil, fmt.Errorf("importers: pair %q/%q not in model space", mappingName, atomicService)
	}
	reqs := s.RelationsFrom(pe, RelRequester)
	provs := s.RelationsFrom(pe, RelProvider)
	if len(reqs) != 1 || len(provs) != 1 {
		return nil, nil, fmt.Errorf("importers: pair %q/%q malformed: %d requesters, %d providers",
			mappingName, atomicService, len(reqs), len(provs))
	}
	return reqs[0].To(), provs[0].To(), nil
}
