package vpm

import (
	"fmt"
	"strings"
	"testing"
)

func TestMachineRunOnce(t *testing.T) {
	s := topoFixture(t)
	m := NewMachine(s)
	out, _ := s.EnsureEntity("out")
	rule := &Rule{
		Name: "copy-devices",
		Pattern: &Pattern{
			Name:        "devices",
			Vars:        []string{"d"},
			Constraints: []Constraint{TypeOf{"d", "meta.Device"}},
		},
		Action: func(s *ModelSpace, b Binding) error {
			_, err := s.NewEntity(out, b["d"].Name())
			return err
		},
	}
	if err := m.AddRule(rule); err != nil {
		t.Fatal(err)
	}
	n, err := m.RunOnce("copy-devices", nil)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Errorf("applications = %d, want 2", n)
	}
	if _, ok := s.Lookup("out.t1"); !ok {
		t.Error("out.t1 missing")
	}
	if _, ok := s.Lookup("out.t2"); !ok {
		t.Error("out.t2 missing")
	}
	if m.Space() != s {
		t.Error("Space accessor broken")
	}
}

func TestMachineGuard(t *testing.T) {
	s := topoFixture(t)
	m := NewMachine(s)
	count := 0
	rule := &Rule{
		Name: "guarded",
		Pattern: &Pattern{
			Name:        "devices",
			Vars:        []string{"d"},
			Constraints: []Constraint{TypeOf{"d", "meta.Device"}},
		},
		When: func(s *ModelSpace, b Binding) bool {
			return b["d"].Name() == "t1"
		},
		Action: func(s *ModelSpace, b Binding) error {
			count++
			return nil
		},
	}
	if err := m.AddRule(rule); err != nil {
		t.Fatal(err)
	}
	n, err := m.RunOnce("guarded", nil)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 || count != 1 {
		t.Errorf("guarded applications = %d/%d, want 1/1", n, count)
	}
}

func TestMachineTrace(t *testing.T) {
	s := topoFixture(t)
	m := NewMachine(s)
	var traced []string
	m.Trace = func(rule string, b Binding) {
		traced = append(traced, rule+":"+b["d"].Name())
	}
	rule := &Rule{
		Name: "r",
		Pattern: &Pattern{
			Name:        "devices",
			Vars:        []string{"d"},
			Constraints: []Constraint{TypeOf{"d", "meta.Device"}},
		},
		Action: func(s *ModelSpace, b Binding) error { return nil },
	}
	_ = m.AddRule(rule)
	if _, err := m.RunOnce("r", nil); err != nil {
		t.Fatal(err)
	}
	if len(traced) != 2 || !strings.HasPrefix(traced[0], "r:") {
		t.Errorf("trace = %v", traced)
	}
}

func TestMachineFixpoint(t *testing.T) {
	// Rule marks unmarked devices; fixpoint reached after one sweep plus an
	// empty verification sweep.
	s := topoFixture(t)
	m := NewMachine(s)
	rule := &Rule{
		Name: "mark",
		Pattern: &Pattern{
			Name:        "unmarked",
			Vars:        []string{"d"},
			Constraints: []Constraint{TypeOf{"d", "meta.Device"}, ValueIs{"d", ""}},
		},
		Action: func(s *ModelSpace, b Binding) error {
			b["d"].SetValue("marked")
			return nil
		},
	}
	if err := m.AddRule(rule); err != nil {
		t.Fatal(err)
	}
	total, err := m.RunToFixpoint("mark", nil, 10)
	if err != nil {
		t.Fatal(err)
	}
	if total != 2 {
		t.Errorf("fixpoint applications = %d, want 2", total)
	}
}

func TestMachineFixpointDiverges(t *testing.T) {
	s := NewSpace()
	base, _ := s.EnsureEntity("base")
	m := NewMachine(s)
	i := 0
	rule := &Rule{
		Name:    "grow",
		Pattern: &Pattern{Name: "base", Vars: []string{"e"}, Constraints: []Constraint{NameIs{"e", "base"}}},
		Action: func(s *ModelSpace, b Binding) error {
			i++
			_, err := s.NewEntity(base, fmt.Sprintf("n%d", i))
			return err
		},
	}
	if err := m.AddRule(rule); err != nil {
		t.Fatal(err)
	}
	if _, err := m.RunToFixpoint("grow", nil, 5); err == nil {
		t.Error("divergent rule must hit the sweep bound")
	}
	if _, err := m.RunToFixpoint("grow", nil, 0); err == nil {
		t.Error("non-positive bound must fail")
	}
}

func TestMachineErrors(t *testing.T) {
	s := NewSpace()
	m := NewMachine(s)
	if err := m.AddRule(nil); err == nil {
		t.Error("nil rule should fail")
	}
	if err := m.AddRule(&Rule{}); err == nil {
		t.Error("unnamed rule should fail")
	}
	if err := m.AddRule(&Rule{Name: "x"}); err == nil {
		t.Error("rule without pattern should fail")
	}
	p := &Pattern{Name: "p", Vars: []string{"a"}}
	if err := m.AddRule(&Rule{Name: "x", Pattern: p}); err == nil {
		t.Error("rule without action should fail")
	}
	ok := &Rule{Name: "x", Pattern: p, Action: func(*ModelSpace, Binding) error { return nil }}
	if err := m.AddRule(ok); err != nil {
		t.Fatal(err)
	}
	if err := m.AddRule(ok); err == nil {
		t.Error("duplicate rule should fail")
	}
	if _, err := m.RunOnce("ghost", nil); err == nil {
		t.Error("unknown rule should fail")
	}
	if r, found := m.Rule("x"); !found || r != ok {
		t.Error("Rule lookup failed")
	}
	if _, found := m.Rule("ghost"); found {
		t.Error("Rule(ghost) should be absent")
	}
}

func TestMachineActionError(t *testing.T) {
	s := topoFixture(t)
	m := NewMachine(s)
	rule := &Rule{
		Name: "fail",
		Pattern: &Pattern{
			Name:        "devices",
			Vars:        []string{"d"},
			Constraints: []Constraint{TypeOf{"d", "meta.Device"}},
		},
		Action: func(s *ModelSpace, b Binding) error {
			return fmt.Errorf("boom")
		},
	}
	_ = m.AddRule(rule)
	n, err := m.RunOnce("fail", nil)
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Errorf("err = %v", err)
	}
	if n != 0 {
		t.Errorf("applied = %d before failure, want 0", n)
	}
}

func TestMachineRunSequence(t *testing.T) {
	s := topoFixture(t)
	m := NewMachine(s)
	mk := func(name, typ string) *Rule {
		return &Rule{
			Name: name,
			Pattern: &Pattern{
				Name:        name,
				Vars:        []string{"e"},
				Constraints: []Constraint{TypeOf{"e", typ}},
			},
			Action: func(*ModelSpace, Binding) error { return nil },
		}
	}
	_ = m.AddRule(mk("devs", "meta.Device"))
	_ = m.AddRule(mk("sws", "meta.Switch"))
	n, err := m.RunSequence("devs", "sws")
	if err != nil {
		t.Fatal(err)
	}
	if n != 4 {
		t.Errorf("sequence applications = %d, want 4", n)
	}
	if _, err := m.RunSequence("devs", "ghost"); err == nil {
		t.Error("sequence with unknown rule should fail")
	}
}
