// Arena allocation for the model space. A cold Step 5/6 import materialises
// one Entity per UML element and one Relation per edge; allocating each as an
// individual heap object made the importer dominate cold generate. Entities
// and relations are instead bump-allocated from chunked arenas owned by the
// ModelSpace, recycled through free lists when deleted, and — via Reset — the
// whole space is reusable across generations without freeing a single block.
//
// Lifecycle rules (DESIGN.md §14):
//
//   - get() fully initialises every field of the returned value; neither
//     Reset nor the free list scrubs eagerly. A recycled Entity's children
//     map and slices keep their capacity across reuse.
//   - Reset rewinds the bump cursors and drops the free lists (the cursor
//     will re-issue those slots), so it must only be called when no caller
//     retains pointers into the space. GetSpace/PutSpace encode that
//     contract as a sync.Pool.
//   - DeleteEntity recycles the subtree immediately; callers must not hold
//     *Entity pointers into a deleted subtree across a subsequent NewEntity.
//     Relations are recycled lazily, only when relSeq compaction removes
//     them from the creation-order log, so a deleted relation can never be
//     resurrected while still listed.
package vpm

import "sync"

// Arena chunk sizes: one block of entities covers a small infrastructure
// model; relations run roughly 2× entities (typing + links).
const (
	entityChunk   = 256
	relationChunk = 512
)

// entityArena bump-allocates Entity values from fixed-size blocks. Blocks
// are never freed; reset rewinds the cursor for whole-space reuse.
type entityArena struct {
	blocks [][]Entity
	block  int // current block index
	next   int // next unused slot in the current block
	free   []*Entity
}

func (a *entityArena) get() *Entity {
	if n := len(a.free); n > 0 {
		e := a.free[n-1]
		a.free[n-1] = nil
		a.free = a.free[:n-1]
		return e
	}
	if a.block == len(a.blocks) {
		a.blocks = append(a.blocks, make([]Entity, entityChunk))
	}
	b := a.blocks[a.block]
	e := &b[a.next]
	if a.next++; a.next == len(b) {
		a.block, a.next = a.block+1, 0
	}
	return e
}

func (a *entityArena) put(e *Entity) { a.free = append(a.free, e) }

func (a *entityArena) reset() {
	a.block, a.next = 0, 0
	for i := range a.free {
		a.free[i] = nil
	}
	a.free = a.free[:0]
}

// relationArena is the Relation counterpart of entityArena.
type relationArena struct {
	blocks [][]Relation
	block  int
	next   int
	free   []*Relation
}

func (a *relationArena) get() *Relation {
	if n := len(a.free); n > 0 {
		r := a.free[n-1]
		a.free[n-1] = nil
		a.free = a.free[:n-1]
		return r
	}
	if a.block == len(a.blocks) {
		a.blocks = append(a.blocks, make([]Relation, relationChunk))
	}
	b := a.blocks[a.block]
	r := &b[a.next]
	if a.next++; a.next == len(b) {
		a.block, a.next = a.block+1, 0
	}
	return r
}

func (a *relationArena) put(r *Relation) { a.free = append(a.free, r) }

func (a *relationArena) reset() {
	a.block, a.next = 0, 0
	for i := range a.free {
		a.free[i] = nil
	}
	a.free = a.free[:0]
}

// Reset empties the space for reuse without releasing arena blocks, index
// buckets or slice capacity: the next import bump-allocates from memory the
// previous generation already paid for. All entities, relations, listeners
// and index entries are dropped; the root survives with its children map
// cleared. Callers must not retain pointers obtained before the Reset.
func (s *ModelSpace) Reset() {
	clear(s.root.children)
	s.root.childSeq = s.root.childSeq[:0]
	s.root.types = s.root.types[:0]
	s.root.value = ""
	clear(s.relations)
	for i := range s.relSeq {
		s.relSeq[i] = nil
	}
	s.relSeq = s.relSeq[:0]
	for e, rs := range s.fromIdx {
		s.putRelSlice(rs)
		delete(s.fromIdx, e)
	}
	for e, rs := range s.toIdx {
		s.putRelSlice(rs)
		delete(s.toIdx, e)
	}
	s.listeners = s.listeners[:0]
	s.entities = 0
	s.deadRels = 0
	s.entArena.reset()
	s.relArena.reset()
}

// spacePool recycles whole model spaces across generations. A space obtained
// here keeps the arena blocks and map buckets of its previous life, so a
// same-shape import is close to allocation-free.
var spacePool = sync.Pool{New: func() any { return NewSpace() }}

// GetSpace returns an empty model space, reusing a previously released one
// when available.
func GetSpace() *ModelSpace { return spacePool.Get().(*ModelSpace) }

// PutSpace resets the space and returns it to the pool. The caller must not
// use the space, or any entity or relation of it, afterwards.
func PutSpace(s *ModelSpace) {
	if s == nil {
		return
	}
	s.Reset()
	spacePool.Put(s)
}
