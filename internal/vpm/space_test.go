package vpm

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestEntityTreeBasics(t *testing.T) {
	s := NewSpace()
	models, err := s.NewEntity(nil, "models")
	if err != nil {
		t.Fatal(err)
	}
	infra, err := s.NewEntity(models, "infrastructure")
	if err != nil {
		t.Fatal(err)
	}
	t1, err := s.NewEntity(infra, "t1")
	if err != nil {
		t.Fatal(err)
	}
	if got := t1.FQN(); got != "models.infrastructure.t1" {
		t.Errorf("FQN = %q", got)
	}
	if s.Root().FQN() != "" {
		t.Errorf("root FQN = %q", s.Root().FQN())
	}
	if t1.Parent() != infra || infra.Parent() != models || models.Parent() != s.Root() {
		t.Error("parent chain broken")
	}
	if got, ok := s.Lookup("models.infrastructure.t1"); !ok || got != t1 {
		t.Error("Lookup failed")
	}
	if _, ok := s.Lookup("models.ghost"); ok {
		t.Error("Lookup(ghost) should fail")
	}
	if got, ok := s.Lookup(""); !ok || got != s.Root() {
		t.Error("Lookup of empty FQN should return root")
	}
	if s.NumEntities() != 3 {
		t.Errorf("NumEntities = %d", s.NumEntities())
	}
	if !t1.IsDescendantOf(models) || !t1.IsDescendantOf(s.Root()) {
		t.Error("IsDescendantOf broken")
	}
	if t1.IsDescendantOf(t1) {
		t.Error("entity is not its own descendant")
	}
	if c, ok := infra.Child("t1"); !ok || c != t1 {
		t.Error("Child lookup failed")
	}
	if t1.String() != "models.infrastructure.t1" || s.Root().String() != "<root>" {
		t.Error("String rendering wrong")
	}
}

func TestNewEntityErrors(t *testing.T) {
	s := NewSpace()
	m, _ := s.NewEntity(nil, "m")
	if _, err := s.NewEntity(m, "m1"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.NewEntity(m, "m1"); err == nil {
		t.Error("duplicate sibling should fail")
	}
	if _, err := s.NewEntity(m, ""); err == nil {
		t.Error("empty name should fail")
	}
	if _, err := s.NewEntity(m, "a.b"); err == nil {
		t.Error("name with separator should fail")
	}
	other := NewSpace()
	if _, err := s.NewEntity(other.Root(), "x"); err == nil {
		t.Error("cross-space parent should fail")
	}
}

func TestEnsureEntity(t *testing.T) {
	s := NewSpace()
	e, err := s.EnsureEntity("a.b.c")
	if err != nil {
		t.Fatal(err)
	}
	if e.FQN() != "a.b.c" {
		t.Errorf("FQN = %q", e.FQN())
	}
	again, err := s.EnsureEntity("a.b.c")
	if err != nil {
		t.Fatal(err)
	}
	if again != e {
		t.Error("EnsureEntity must be idempotent")
	}
	if s.NumEntities() != 3 {
		t.Errorf("NumEntities = %d, want 3", s.NumEntities())
	}
	if root, err := s.EnsureEntity(""); err != nil || root != s.Root() {
		t.Error("EnsureEntity of empty FQN should return root")
	}
}

func TestEntityValue(t *testing.T) {
	s := NewSpace()
	e, _ := s.NewEntity(nil, "e")
	changes := 0
	s.Subscribe(func(ev Event) {
		if ev.Kind == ValueChanged {
			changes++
		}
	})
	e.SetValue("x")
	e.SetValue("x") // no-op, no event
	e.SetValue("y")
	if e.Value() != "y" {
		t.Errorf("Value = %q", e.Value())
	}
	if changes != 2 {
		t.Errorf("value change events = %d, want 2", changes)
	}
}

func TestRelations(t *testing.T) {
	s := NewSpace()
	a, _ := s.NewEntity(nil, "a")
	b, _ := s.NewEntity(nil, "b")
	c, _ := s.NewEntity(nil, "c")
	ab, err := s.NewRelation("link", a, b)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.NewRelation("link", b, c); err != nil {
		t.Fatal(err)
	}
	if _, err := s.NewRelation("owns", a, c); err != nil {
		t.Fatal(err)
	}
	if got := len(s.Relations("link")); got != 2 {
		t.Errorf("Relations(link) = %d", got)
	}
	if got := len(s.Relations("")); got != 3 {
		t.Errorf("Relations() = %d", got)
	}
	if got := len(s.RelationsFrom(a, "")); got != 2 {
		t.Errorf("RelationsFrom(a) = %d", got)
	}
	if got := len(s.RelationsFrom(a, "link")); got != 1 {
		t.Errorf("RelationsFrom(a, link) = %d", got)
	}
	if got := len(s.RelationsTo(c, "")); got != 2 {
		t.Errorf("RelationsTo(c) = %d", got)
	}
	if got := len(s.RelationsOf(b, "link")); got != 2 {
		t.Errorf("RelationsOf(b, link) = %d", got)
	}
	if ab.From() != a || ab.To() != b || ab.Name() != "link" {
		t.Error("relation accessors broken")
	}
	ab.SetValue("10G")
	if ab.Value() != "10G" {
		t.Error("relation value broken")
	}
	if !strings.Contains(ab.String(), "-link->") {
		t.Errorf("relation String = %q", ab.String())
	}
	s.DeleteRelation(ab)
	s.DeleteRelation(ab) // idempotent
	if got := len(s.Relations("link")); got != 1 {
		t.Errorf("after delete Relations(link) = %d", got)
	}
	if got := s.NumRelations(); got != 2 {
		t.Errorf("NumRelations = %d", got)
	}
}

func TestRelationErrors(t *testing.T) {
	s := NewSpace()
	a, _ := s.NewEntity(nil, "a")
	if _, err := s.NewRelation("", a, a); err == nil {
		t.Error("empty relation name should fail")
	}
	if _, err := s.NewRelation("r", nil, a); err == nil {
		t.Error("nil end should fail")
	}
	other := NewSpace()
	ob, _ := other.NewEntity(nil, "b")
	if _, err := s.NewRelation("r", a, ob); err == nil {
		t.Error("cross-space relation should fail")
	}
	b, _ := s.NewEntity(nil, "b")
	if err := s.DeleteEntity(b); err != nil {
		t.Fatal(err)
	}
	if _, err := s.NewRelation("r", a, b); err == nil {
		t.Error("relation to deleted entity should fail")
	}
}

func TestDeleteEntitySubtree(t *testing.T) {
	s := NewSpace()
	a, _ := s.NewEntity(nil, "a")
	b, _ := s.NewEntity(a, "b")
	c, _ := s.NewEntity(b, "c")
	ext, _ := s.NewEntity(nil, "ext")
	if _, err := s.NewRelation("r", ext, c); err != nil {
		t.Fatal(err)
	}
	if _, err := s.NewRelation("r", b, ext); err != nil {
		t.Fatal(err)
	}
	deleted := 0
	s.Subscribe(func(ev Event) {
		if ev.Kind == EntityDeleted {
			deleted++
		}
	})
	if err := s.DeleteEntity(a); err != nil {
		t.Fatal(err)
	}
	if deleted != 3 {
		t.Errorf("deleted events = %d, want 3", deleted)
	}
	if s.NumEntities() != 1 {
		t.Errorf("NumEntities = %d, want 1 (ext)", s.NumEntities())
	}
	if s.NumRelations() != 0 {
		t.Errorf("NumRelations = %d, want 0", s.NumRelations())
	}
	if _, ok := s.Lookup("a.b.c"); ok {
		t.Error("deleted subtree still resolvable")
	}
	if err := s.DeleteEntity(a); err == nil {
		t.Error("double delete should fail")
	}
	if err := s.DeleteEntity(s.Root()); err == nil {
		t.Error("deleting root should fail")
	}
	if err := s.DeleteEntity(nil); err == nil {
		t.Error("deleting nil should fail")
	}
}

func TestInstanceOf(t *testing.T) {
	s := NewSpace()
	meta, _ := s.EnsureEntity("meta.Device")
	t1, _ := s.EnsureEntity("models.t1")
	t2, _ := s.EnsureEntity("models.t2")
	if err := s.SetInstanceOf(t1, meta); err != nil {
		t.Fatal(err)
	}
	if err := s.SetInstanceOf(t2, meta); err != nil {
		t.Fatal(err)
	}
	if err := s.SetInstanceOf(t1, meta); err == nil {
		t.Error("double typing should fail")
	}
	if !t1.IsInstanceOf("meta.Device") {
		t.Error("IsInstanceOf failed")
	}
	if t1.IsInstanceOf("meta.Ghost") {
		t.Error("IsInstanceOf(ghost) must be false")
	}
	insts := s.InstancesOf("meta.Device")
	if len(insts) != 2 || insts[0] != t1 || insts[1] != t2 {
		t.Errorf("InstancesOf = %v", insts)
	}
	if got := s.InstancesOf("meta.Ghost"); got != nil {
		t.Errorf("InstancesOf(ghost) = %v", got)
	}
	if got := t1.Types(); len(got) != 1 || got[0] != meta {
		t.Errorf("Types = %v", got)
	}
	if err := s.SetInstanceOf(nil, meta); err == nil {
		t.Error("nil instance should fail")
	}
}

func TestWalk(t *testing.T) {
	s := NewSpace()
	for _, fqn := range []string{"a.x", "a.y", "b"} {
		if _, err := s.EnsureEntity(fqn); err != nil {
			t.Fatal(err)
		}
	}
	var seen []string
	s.Walk(func(e *Entity) bool {
		seen = append(seen, e.FQN())
		return true
	})
	want := []string{"a", "a.x", "a.y", "b"}
	if len(seen) != len(want) {
		t.Fatalf("Walk visited %v", seen)
	}
	for i := range want {
		if seen[i] != want[i] {
			t.Errorf("Walk[%d] = %s, want %s", i, seen[i], want[i])
		}
	}
	// Early stop.
	count := 0
	s.Walk(func(e *Entity) bool {
		count++
		return count < 2
	})
	if count != 2 {
		t.Errorf("Walk early stop visited %d", count)
	}
}

func TestMustLookupPanics(t *testing.T) {
	s := NewSpace()
	defer func() {
		if recover() == nil {
			t.Error("MustLookup should panic on unknown FQN")
		}
	}()
	s.MustLookup("nope")
}

func TestEventKindString(t *testing.T) {
	kinds := []EventKind{EntityCreated, EntityDeleted, RelationCreated, RelationDeleted, ValueChanged}
	for _, k := range kinds {
		if strings.Contains(k.String(), "EventKind(") {
			t.Errorf("kind %d has no name", k)
		}
	}
	if !strings.Contains(EventKind(42).String(), "EventKind(") {
		t.Error("unknown kind should use fallback format")
	}
}

// Property: EnsureEntity then Lookup round-trips for arbitrary well-formed
// FQN paths.
func TestEnsureLookupProperty(t *testing.T) {
	f := func(segs [3]uint8) bool {
		s := NewSpace()
		names := []string{"a", "b", "c", "d", "e"}
		fqn := names[int(segs[0])%5] + "." + names[int(segs[1])%5] + "." + names[int(segs[2])%5]
		e, err := s.EnsureEntity(fqn)
		if err != nil {
			return false
		}
		got, ok := s.Lookup(fqn)
		return ok && got == e && e.FQN() == fqn
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDump(t *testing.T) {
	s := NewSpace()
	meta, _ := s.EnsureEntity("meta.Device")
	t1, _ := s.EnsureEntity("net.t1")
	_ = s.SetInstanceOf(t1, meta)
	t1.SetValue("requester")
	out := s.Dump()
	for _, want := range []string{"meta\n", "  Device\n", "net\n", `  t1 = "requester" : Device`} {
		if !strings.Contains(out, want) {
			t.Errorf("Dump missing %q:\n%s", want, out)
		}
	}
}
