package vpm

import (
	"testing"
)

// topoFixture builds a small typed topology in the model space:
//
//	meta.Device, meta.Switch (types)
//	net.{t1,t2} : Device, net.{c1,c2} : Switch
//	links: t1--c1, t2--c2, c1--c2 (undirected "link" relations, stored
//	one direction each)
func topoFixture(t *testing.T) *ModelSpace {
	t.Helper()
	s := NewSpace()
	dev, _ := s.EnsureEntity("meta.Device")
	sw, _ := s.EnsureEntity("meta.Switch")
	mk := func(name string, typ *Entity) *Entity {
		e, err := s.EnsureEntity("net." + name)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.SetInstanceOf(e, typ); err != nil {
			t.Fatal(err)
		}
		return e
	}
	t1 := mk("t1", dev)
	t2 := mk("t2", dev)
	c1 := mk("c1", sw)
	c2 := mk("c2", sw)
	for _, pair := range [][2]*Entity{{t1, c1}, {t2, c2}, {c1, c2}} {
		if _, err := s.NewRelation("link", pair[0], pair[1]); err != nil {
			t.Fatal(err)
		}
	}
	return s
}

func TestMatchTypeConstraint(t *testing.T) {
	s := topoFixture(t)
	p := &Pattern{
		Name:        "devices",
		Vars:        []string{"d"},
		Constraints: []Constraint{TypeOf{"d", "meta.Device"}},
	}
	ms, err := p.Match(s, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 2 {
		t.Fatalf("matches = %d, want 2", len(ms))
	}
	names := map[string]bool{}
	for _, b := range ms {
		names[b["d"].Name()] = true
	}
	if !names["t1"] || !names["t2"] {
		t.Errorf("matched %v", names)
	}
}

func TestMatchConnectedUndirected(t *testing.T) {
	s := topoFixture(t)
	// Every device connected to a switch, regardless of storage direction.
	p := &Pattern{
		Name: "dev-sw",
		Vars: []string{"d", "s"},
		Constraints: []Constraint{
			TypeOf{"d", "meta.Device"},
			TypeOf{"s", "meta.Switch"},
			Connected{From: "d", Rel: "link", To: "s"},
		},
		Injective: true,
	}
	ms, err := p.Match(s, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 2 {
		t.Fatalf("matches = %d, want 2 (t1-c1, t2-c2)", len(ms))
	}
	for _, b := range ms {
		d, sw := b["d"].Name(), b["s"].Name()
		if !(d == "t1" && sw == "c1") && !(d == "t2" && sw == "c2") {
			t.Errorf("unexpected match %s-%s", d, sw)
		}
	}
}

func TestMatchDirectedConnected(t *testing.T) {
	s := topoFixture(t)
	// Directed: only the stored direction t1->c1 matches from the Device side.
	p := &Pattern{
		Name: "directed",
		Vars: []string{"a", "b"},
		Constraints: []Constraint{
			TypeOf{"a", "meta.Switch"},
			TypeOf{"b", "meta.Device"},
			Connected{From: "a", Rel: "link", To: "b", Directed: true},
		},
	}
	ms, err := p.Match(s, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 0 {
		t.Errorf("directed switch->device matches = %d, want 0", len(ms))
	}
}

func TestMatchSeed(t *testing.T) {
	s := topoFixture(t)
	c1 := s.MustLookup("net.c1")
	p := &Pattern{
		Name: "neighbors",
		Vars: []string{"x", "n"},
		Constraints: []Constraint{
			Connected{From: "x", Rel: "link", To: "n"},
		},
		Injective: true,
	}
	ms, err := p.Match(s, Binding{"x": c1})
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 2 {
		t.Fatalf("neighbors of c1 = %d, want 2 (t1, c2)", len(ms))
	}
	for _, b := range ms {
		if b["x"] != c1 {
			t.Error("seed binding must be preserved")
		}
	}
	// Seeding an undeclared variable is an error.
	if _, err := p.Match(s, Binding{"ghost": c1}); err == nil {
		t.Error("seed of undeclared variable should fail")
	}
}

func TestMatchBelowAndNameValue(t *testing.T) {
	s := topoFixture(t)
	s.MustLookup("net.t1").SetValue("requester")
	p := &Pattern{
		Name: "below",
		Vars: []string{"e"},
		Constraints: []Constraint{
			Below{"e", "net"},
			ValueIs{"e", "requester"},
		},
	}
	ms, err := p.Match(s, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 1 || ms[0]["e"].Name() != "t1" {
		t.Errorf("matches = %v", ms)
	}
	p2 := &Pattern{
		Name: "byname",
		Vars: []string{"e"},
		Constraints: []Constraint{
			Below{"e", "net"},
			NameIs{"e", "c2"},
		},
	}
	ms2, err := p2.Match(s, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms2) != 1 || ms2[0]["e"].FQN() != "net.c2" {
		t.Errorf("byname matches = %v", ms2)
	}
	// Below of a missing ancestor matches nothing.
	p3 := &Pattern{Name: "ghost", Vars: []string{"e"}, Constraints: []Constraint{Below{"e", "ghost"}}}
	ms3, err := p3.Match(s, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms3) != 0 {
		t.Errorf("ghost subtree matches = %d", len(ms3))
	}
}

func TestMatchInjectivity(t *testing.T) {
	s := topoFixture(t)
	pairs := &Pattern{
		Name: "pairs",
		Vars: []string{"a", "b"},
		Constraints: []Constraint{
			TypeOf{"a", "meta.Switch"},
			TypeOf{"b", "meta.Switch"},
		},
	}
	ms, err := pairs.Match(s, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 4 {
		t.Errorf("non-injective pairs = %d, want 4", len(ms))
	}
	pairs.Injective = true
	ms, err = pairs.Match(s, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 2 {
		t.Errorf("injective pairs = %d, want 2", len(ms))
	}
}

func TestPatternValidate(t *testing.T) {
	bad := &Pattern{
		Name:        "bad",
		Vars:        []string{"a"},
		Constraints: []Constraint{TypeOf{"ghost", "meta.Device"}},
	}
	if err := bad.Validate(); err == nil {
		t.Error("undeclared variable should fail validation")
	}
	dup := &Pattern{Name: "dup", Vars: []string{"a", "a"}}
	if err := dup.Validate(); err == nil {
		t.Error("duplicate variable should fail validation")
	}
	empty := &Pattern{Name: "empty", Vars: []string{""}}
	if err := empty.Validate(); err == nil {
		t.Error("empty variable should fail validation")
	}
	if _, err := bad.Match(NewSpace(), nil); err == nil {
		t.Error("Match must validate first")
	}
}

func TestMatchFallbackCandidates(t *testing.T) {
	// A variable with no unary constraint enumerates all entities.
	s := topoFixture(t)
	p := &Pattern{
		Name: "all",
		Vars: []string{"e"},
	}
	ms, err := p.Match(s, nil)
	if err != nil {
		t.Fatal(err)
	}
	// meta + meta.Device + meta.Switch + net + 4 nodes = 8 entities.
	if len(ms) != 8 {
		t.Errorf("all-entity matches = %d, want 8", len(ms))
	}
}
