package vpm

import (
	"fmt"
	"sort"
)

// This file provides declarative graph-pattern matching over the model
// space, replacing the declarative model queries of the VIATRA2 textual
// command language (VTCL) the paper uses for Step 7: "This language is
// especially useful in this methodology to implement the path discovery
// algorithm."
//
// A pattern declares variables and constraints; Match enumerates all
// bindings of variables to entities that satisfy every constraint, by
// backtracking with candidate sets seeded from the most selective unary
// constraint available per variable.

// Binding maps pattern variable names to the entities they are bound to.
type Binding map[string]*Entity

// clone copies the binding so stored matches are immutable.
func (b Binding) clone() Binding {
	c := make(Binding, len(b))
	for k, v := range b {
		c[k] = v
	}
	return c
}

// Constraint restricts the admissible bindings of one or two variables.
type Constraint interface {
	// vars returns the variables the constraint mentions.
	vars() []string
	// check evaluates the constraint under a (possibly partial) binding;
	// it must return true when any mentioned variable is still unbound.
	check(s *ModelSpace, b Binding) bool
}

// TypeOf constrains Var to be an instance of the entity at TypeFQN.
type TypeOf struct {
	Var     string
	TypeFQN string
}

func (c TypeOf) vars() []string { return []string{c.Var} }

func (c TypeOf) check(s *ModelSpace, b Binding) bool {
	e, ok := b[c.Var]
	if !ok {
		return true
	}
	return e.IsInstanceOf(c.TypeFQN)
}

// Below constrains Var to lie strictly below the entity at AncestorFQN in
// the containment tree.
type Below struct {
	Var         string
	AncestorFQN string
}

func (c Below) vars() []string { return []string{c.Var} }

func (c Below) check(s *ModelSpace, b Binding) bool {
	e, ok := b[c.Var]
	if !ok {
		return true
	}
	anc, ok := s.Lookup(c.AncestorFQN)
	if !ok {
		return false
	}
	return e.IsDescendantOf(anc)
}

// ValueIs constrains Var's entity value to equal Value.
type ValueIs struct {
	Var   string
	Value string
}

func (c ValueIs) vars() []string { return []string{c.Var} }

func (c ValueIs) check(s *ModelSpace, b Binding) bool {
	e, ok := b[c.Var]
	if !ok {
		return true
	}
	return e.Value() == c.Value
}

// NameIs constrains Var's local entity name.
type NameIs struct {
	Var  string
	Name string
}

func (c NameIs) vars() []string { return []string{c.Var} }

func (c NameIs) check(s *ModelSpace, b Binding) bool {
	e, ok := b[c.Var]
	if !ok {
		return true
	}
	return e.Name() == c.Name
}

// Connected constrains a relation named Rel (any name if empty) to run from
// From to To. If Directed is false the relation may run either way, which is
// how undirected network links are queried.
type Connected struct {
	From     string
	Rel      string
	To       string
	Directed bool
}

func (c Connected) vars() []string { return []string{c.From, c.To} }

func (c Connected) check(s *ModelSpace, b Binding) bool {
	from, okF := b[c.From]
	to, okT := b[c.To]
	if !okF || !okT {
		return true
	}
	for _, r := range s.RelationsFrom(from, c.Rel) {
		if r.to == to {
			return true
		}
	}
	if !c.Directed {
		for _, r := range s.RelationsFrom(to, c.Rel) {
			if r.to == from {
				return true
			}
		}
	}
	return false
}

// Pattern is a named conjunction of constraints over a set of variables.
// When Injective is set, distinct variables must bind distinct entities
// (the common case for topological patterns).
type Pattern struct {
	Name        string
	Vars        []string
	Constraints []Constraint
	Injective   bool
}

// Validate checks that every constraint only mentions declared variables.
func (p *Pattern) Validate() error {
	declared := make(map[string]bool, len(p.Vars))
	for _, v := range p.Vars {
		if v == "" {
			return fmt.Errorf("vpm: pattern %s: empty variable name", p.Name)
		}
		if declared[v] {
			return fmt.Errorf("vpm: pattern %s: duplicate variable %s", p.Name, v)
		}
		declared[v] = true
	}
	for _, c := range p.Constraints {
		for _, v := range c.vars() {
			if !declared[v] {
				return fmt.Errorf("vpm: pattern %s: constraint mentions undeclared variable %s", p.Name, v)
			}
		}
	}
	return nil
}

// Match enumerates all bindings satisfying the pattern. The optional seed
// pre-binds variables (pass nil for none); seeded variables keep their
// binding in every result.
func (p *Pattern) Match(s *ModelSpace, seed Binding) ([]Binding, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	for v := range seed {
		found := false
		for _, pv := range p.Vars {
			if pv == v {
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("vpm: pattern %s: seed binds undeclared variable %s", p.Name, v)
		}
	}

	// Candidate sets: seeded variables are fixed; otherwise use the most
	// selective unary constraint (TypeOf via the instanceOf index, then
	// Below via subtree walk), falling back to all entities.
	candidates := make(map[string][]*Entity, len(p.Vars))
	for _, v := range p.Vars {
		if e, ok := seed[v]; ok {
			candidates[v] = []*Entity{e}
			continue
		}
		candidates[v] = p.candidatesFor(s, v)
	}

	// Order variables by ascending candidate count to fail fast.
	order := make([]string, len(p.Vars))
	copy(order, p.Vars)
	sort.SliceStable(order, func(i, j int) bool {
		return len(candidates[order[i]]) < len(candidates[order[j]])
	})

	var out []Binding
	b := make(Binding, len(p.Vars))
	for k, v := range seed {
		b[k] = v
	}
	var rec func(i int)
	rec = func(i int) {
		if i == len(order) {
			out = append(out, b.clone())
			return
		}
		v := order[i]
		if _, pre := seed[v]; pre {
			rec(i + 1)
			return
		}
		for _, cand := range candidates[v] {
			if p.Injective && bound(b, cand) {
				continue
			}
			b[v] = cand
			if p.consistent(s, b) {
				rec(i + 1)
			}
			delete(b, v)
		}
	}
	rec(0)
	return out, nil
}

func bound(b Binding, e *Entity) bool {
	for _, x := range b {
		if x == e {
			return true
		}
	}
	return false
}

func (p *Pattern) consistent(s *ModelSpace, b Binding) bool {
	for _, c := range p.Constraints {
		if !c.check(s, b) {
			return false
		}
	}
	return true
}

func (p *Pattern) candidatesFor(s *ModelSpace, v string) []*Entity {
	// Prefer TypeOf (cheap reverse index), then Below (subtree walk).
	for _, c := range p.Constraints {
		if t, ok := c.(TypeOf); ok && t.Var == v {
			return s.InstancesOf(t.TypeFQN)
		}
	}
	for _, c := range p.Constraints {
		if bl, ok := c.(Below); ok && bl.Var == v {
			anc, found := s.Lookup(bl.AncestorFQN)
			if !found {
				return nil
			}
			var out []*Entity
			var rec func(e *Entity)
			rec = func(e *Entity) {
				for _, ch := range e.Children() {
					out = append(out, ch)
					rec(ch)
				}
			}
			rec(anc)
			return out
		}
	}
	var out []*Entity
	s.Walk(func(e *Entity) bool {
		out = append(out, e)
		return true
	})
	return out
}
