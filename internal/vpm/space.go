// Package vpm implements a model space in the spirit of VIATRA2's Visual and
// Precise Metamodeling (VPM) layer, which the paper uses as the intermediate
// representation for all model-to-model transformations (Section V-C):
//
//	"Models and metamodels are stored in the Visual and Precise
//	 Metamodeling (VPM) model space, which provides a flexible way to
//	 capture languages and models from various domains by identifying
//	 their entities and relations."
//
// The space is a tree of entities addressed by fully-qualified names (FQNs,
// dot-separated), with directed, named relations between arbitrary entities
// and an instance-of typing mechanism that links model elements to their
// metamodel entities. On top of the store, pattern.go provides declarative
// graph-pattern queries and transform.go a rule-based transformation engine,
// together replacing the VTCL language used in the paper.
package vpm

import (
	"fmt"
	"sort"
	"strings"
)

// Entity is one node of the model space tree. Entities are created through
// the ModelSpace and are addressed by their FQN, e.g.
// "models.infrastructure.t1".
type Entity struct {
	space    *ModelSpace
	name     string
	parent   *Entity
	children map[string]*Entity
	childSeq []string
	value    string
	types    []*Entity
	deleted  bool
}

// Name returns the entity's local name.
func (e *Entity) Name() string { return e.name }

// Parent returns the parent entity, or nil for the root.
func (e *Entity) Parent() *Entity { return e.parent }

// FQN returns the fully-qualified, dot-separated name of the entity. The
// root entity has the empty FQN.
func (e *Entity) FQN() string {
	if e.parent == nil {
		return ""
	}
	parts := []string{}
	for cur := e; cur.parent != nil; cur = cur.parent {
		parts = append(parts, cur.name)
	}
	for i, j := 0, len(parts)-1; i < j; i, j = i+1, j-1 {
		parts[i], parts[j] = parts[j], parts[i]
	}
	return strings.Join(parts, ".")
}

// Value returns the entity's string payload.
func (e *Entity) Value() string { return e.value }

// SetValue updates the entity's string payload and notifies subscribers.
func (e *Entity) SetValue(v string) {
	if e.value == v {
		return
	}
	e.value = v
	e.space.notify(Event{Kind: ValueChanged, Entity: e})
}

// Children returns the child entities in creation order.
func (e *Entity) Children() []*Entity {
	out := make([]*Entity, 0, len(e.childSeq))
	for _, n := range e.childSeq {
		out = append(out, e.children[n])
	}
	return out
}

// Child looks up a direct child by local name.
func (e *Entity) Child(name string) (*Entity, bool) {
	c, ok := e.children[name]
	return c, ok
}

// ChildNames returns the sorted names of direct children.
func (e *Entity) ChildNames() []string {
	out := make([]string, len(e.childSeq))
	copy(out, e.childSeq)
	sort.Strings(out)
	return out
}

// Types returns the entities this entity is an instance of.
func (e *Entity) Types() []*Entity {
	out := make([]*Entity, len(e.types))
	copy(out, e.types)
	return out
}

// IsInstanceOf reports whether the entity is typed (directly) by the entity
// with the given FQN.
func (e *Entity) IsInstanceOf(typeFQN string) bool {
	for _, t := range e.types {
		if t.FQN() == typeFQN {
			return true
		}
	}
	return false
}

// IsDescendantOf reports whether the entity lies strictly below the given
// ancestor in the containment tree.
func (e *Entity) IsDescendantOf(anc *Entity) bool {
	for cur := e.parent; cur != nil; cur = cur.parent {
		if cur == anc {
			return true
		}
	}
	return false
}

// String renders the entity as its FQN (or "<root>").
func (e *Entity) String() string {
	if e.parent == nil {
		return "<root>"
	}
	return e.FQN()
}

// Relation is a named, directed edge between two entities. Relations may be
// navigated in both directions through the ModelSpace indexes.
type Relation struct {
	space   *ModelSpace
	name    string
	from    *Entity
	to      *Entity
	value   string
	deleted bool
}

// Name returns the relation name (its kind, e.g. "link" or "instanceOf").
func (r *Relation) Name() string { return r.name }

// From returns the source entity.
func (r *Relation) From() *Entity { return r.from }

// To returns the target entity.
func (r *Relation) To() *Entity { return r.to }

// Value returns the relation's string payload.
func (r *Relation) Value() string { return r.value }

// SetValue updates the relation's string payload.
func (r *Relation) SetValue(v string) { r.value = v }

// String renders the relation as "from -name-> to".
func (r *Relation) String() string {
	return fmt.Sprintf("%s -%s-> %s", r.from, r.name, r.to)
}

// EventKind enumerates model-space change notifications.
type EventKind uint8

const (
	// EntityCreated fires after a new entity is inserted.
	EntityCreated EventKind = iota
	// EntityDeleted fires after an entity (and its subtree) is removed.
	EntityDeleted
	// RelationCreated fires after a new relation is inserted.
	RelationCreated
	// RelationDeleted fires after a relation is removed.
	RelationDeleted
	// ValueChanged fires after an entity value changes.
	ValueChanged
)

// String returns the event kind name.
func (k EventKind) String() string {
	switch k {
	case EntityCreated:
		return "EntityCreated"
	case EntityDeleted:
		return "EntityDeleted"
	case RelationCreated:
		return "RelationCreated"
	case RelationDeleted:
		return "RelationDeleted"
	case ValueChanged:
		return "ValueChanged"
	}
	return fmt.Sprintf("EventKind(%d)", uint8(k))
}

// Event describes one change to the model space.
type Event struct {
	Kind     EventKind
	Entity   *Entity   // set for entity and value events
	Relation *Relation // set for relation events
}

// ModelSpace is the root store: a containment tree of entities plus a
// relation store with from/to indexes.
type ModelSpace struct {
	root      *Entity
	relations map[*Relation]struct{}
	relSeq    []*Relation
	fromIdx   map[*Entity][]*Relation
	toIdx     map[*Entity][]*Relation
	listeners []func(Event)
	entities  int
	deadRels  int // deleted relations still occupying relSeq slots
	entArena  entityArena
	relArena  relationArena
	relSlices [][]*Relation // recycled fromIdx/toIdx backing slices
}

// getRelSlice returns an empty index slice, reusing a recycled backing
// array when available so per-entity index entries survive space reuse.
func (s *ModelSpace) getRelSlice() []*Relation {
	if n := len(s.relSlices); n > 0 {
		sl := s.relSlices[n-1]
		s.relSlices[n-1] = nil
		s.relSlices = s.relSlices[:n-1]
		return sl
	}
	return make([]*Relation, 0, 4)
}

func (s *ModelSpace) putRelSlice(sl []*Relation) {
	if cap(sl) == 0 {
		return
	}
	sl = sl[:cap(sl)]
	for i := range sl {
		sl[i] = nil
	}
	s.relSlices = append(s.relSlices, sl[:0])
}

// NewSpace creates an empty model space with a root entity.
func NewSpace() *ModelSpace {
	s := &ModelSpace{
		relations: make(map[*Relation]struct{}),
		fromIdx:   make(map[*Entity][]*Relation),
		toIdx:     make(map[*Entity][]*Relation),
	}
	s.root = &Entity{space: s, children: make(map[string]*Entity)}
	return s
}

// Root returns the root entity.
func (s *ModelSpace) Root() *Entity { return s.root }

// NumEntities returns the number of entities excluding the root.
func (s *ModelSpace) NumEntities() int { return s.entities }

// NumRelations returns the number of live relations.
func (s *ModelSpace) NumRelations() int { return len(s.relations) }

// Subscribe registers a change listener. Listeners are called synchronously
// in registration order.
func (s *ModelSpace) Subscribe(fn func(Event)) { s.listeners = append(s.listeners, fn) }

func (s *ModelSpace) notify(ev Event) {
	for _, fn := range s.listeners {
		fn(ev)
	}
}

// NewEntity creates a child entity under parent. Sibling names are unique;
// names must be non-empty and must not contain the FQN separator.
func (s *ModelSpace) NewEntity(parent *Entity, name string) (*Entity, error) {
	if parent == nil {
		parent = s.root
	}
	if parent.space != s || parent.deleted {
		return nil, fmt.Errorf("vpm: parent %q not live in this space", parent)
	}
	if name == "" {
		return nil, fmt.Errorf("vpm: empty entity name under %q", parent)
	}
	if strings.Contains(name, ".") {
		return nil, fmt.Errorf("vpm: entity name %q contains FQN separator", name)
	}
	if _, dup := parent.children[name]; dup {
		return nil, fmt.Errorf("vpm: duplicate entity %q under %q", name, parent)
	}
	e := s.entArena.get()
	e.space, e.name, e.parent = s, name, parent
	e.value = ""
	e.deleted = false
	e.childSeq = e.childSeq[:0]
	e.types = e.types[:0]
	clear(e.children) // lazily created; a recycled entity keeps its buckets
	if parent.children == nil {
		parent.children = make(map[string]*Entity)
	}
	parent.children[name] = e
	parent.childSeq = append(parent.childSeq, name)
	s.entities++
	s.notify(Event{Kind: EntityCreated, Entity: e})
	return e, nil
}

// EnsureEntity returns the entity at the given FQN, creating any missing
// path segments. It is the idiomatic way importers materialise hierarchical
// namespaces ("models.uml.classes", …).
func (s *ModelSpace) EnsureEntity(fqn string) (*Entity, error) {
	if fqn == "" {
		return s.root, nil
	}
	cur := s.root
	for _, seg := range strings.Split(fqn, ".") {
		next, ok := cur.children[seg]
		if !ok {
			var err error
			next, err = s.NewEntity(cur, seg)
			if err != nil {
				return nil, err
			}
		}
		cur = next
	}
	return cur, nil
}

// Lookup resolves an FQN to an entity.
func (s *ModelSpace) Lookup(fqn string) (*Entity, bool) {
	if fqn == "" {
		return s.root, true
	}
	cur := s.root
	for _, seg := range strings.Split(fqn, ".") {
		next, ok := cur.children[seg]
		if !ok {
			return nil, false
		}
		cur = next
	}
	return cur, true
}

// MustLookup resolves an FQN and panics if absent; for transformation code
// where a missing namespace is a programming error.
func (s *ModelSpace) MustLookup(fqn string) *Entity {
	e, ok := s.Lookup(fqn)
	if !ok {
		panic(fmt.Sprintf("vpm: unknown FQN %q", fqn))
	}
	return e
}

// DeleteEntity removes an entity and its entire subtree, together with all
// relations incident to any removed entity. The root cannot be deleted.
func (s *ModelSpace) DeleteEntity(e *Entity) error {
	if e == nil || e.space != s {
		return fmt.Errorf("vpm: entity not in this space")
	}
	if e.parent == nil {
		return fmt.Errorf("vpm: cannot delete the root entity")
	}
	if e.deleted {
		return fmt.Errorf("vpm: entity %q already deleted", e)
	}
	delete(e.parent.children, e.name)
	for i, n := range e.parent.childSeq {
		if n == e.name {
			e.parent.childSeq = append(e.parent.childSeq[:i], e.parent.childSeq[i+1:]...)
			break
		}
	}
	var drop func(x *Entity)
	drop = func(x *Entity) {
		for _, c := range x.Children() {
			drop(c)
		}
		for _, r := range append(s.relationsFrom(x), s.relationsTo(x)...) {
			s.DeleteRelation(r)
		}
		x.deleted = true
		s.entities--
		s.notify(Event{Kind: EntityDeleted, Entity: x})
		// Recycle the slot; the next NewEntity re-initialises every field.
		// Callers must not retain pointers into a deleted subtree.
		x.parent = nil
		x.types = x.types[:0]
		s.entArena.put(x)
	}
	drop(e)
	return nil
}

// NewRelation creates a named, directed relation between two live entities.
func (s *ModelSpace) NewRelation(name string, from, to *Entity) (*Relation, error) {
	if name == "" {
		return nil, fmt.Errorf("vpm: empty relation name")
	}
	if from == nil || to == nil || from.space != s || to.space != s {
		return nil, fmt.Errorf("vpm: relation %q: ends not in this space", name)
	}
	if from.deleted || to.deleted {
		return nil, fmt.Errorf("vpm: relation %q: deleted end", name)
	}
	r := s.relArena.get()
	r.space, r.name, r.from, r.to = s, name, from, to
	r.value = ""
	r.deleted = false
	s.relations[r] = struct{}{}
	s.relSeq = append(s.relSeq, r)
	fs, ok := s.fromIdx[from]
	if !ok {
		fs = s.getRelSlice()
	}
	s.fromIdx[from] = append(fs, r)
	ts, ok := s.toIdx[to]
	if !ok {
		ts = s.getRelSlice()
	}
	s.toIdx[to] = append(ts, r)
	s.notify(Event{Kind: RelationCreated, Relation: r})
	return r, nil
}

// DeleteRelation removes a relation. Deleting an already-deleted relation is
// a no-op.
func (s *ModelSpace) DeleteRelation(r *Relation) {
	if r == nil || r.space != s || r.deleted {
		return
	}
	r.deleted = true
	delete(s.relations, r)
	if rs := removeRel(s.fromIdx[r.from], r); len(rs) == 0 {
		s.putRelSlice(rs)
		delete(s.fromIdx, r.from)
	} else {
		s.fromIdx[r.from] = rs
	}
	if rs := removeRel(s.toIdx[r.to], r); len(rs) == 0 {
		s.putRelSlice(rs)
		delete(s.toIdx, r.to)
	} else {
		s.toIdx[r.to] = rs
	}
	s.deadRels++
	s.notify(Event{Kind: RelationDeleted, Relation: r})
	// Compact the creation-order log once deleted slots outnumber live
	// relations; compaction is the only point where relation slots are
	// recycled, so a deleted relation still listed in relSeq can never be
	// resurrected as a different edge.
	if s.deadRels >= 64 && s.deadRels > len(s.relations) {
		s.compactRelSeq()
	}
}

func (s *ModelSpace) compactRelSeq() {
	w := 0
	for _, r := range s.relSeq {
		if r.deleted {
			r.from, r.to = nil, nil
			s.relArena.put(r)
			continue
		}
		s.relSeq[w] = r
		w++
	}
	for i := w; i < len(s.relSeq); i++ {
		s.relSeq[i] = nil
	}
	s.relSeq = s.relSeq[:w]
	s.deadRels = 0
}

func removeRel(rs []*Relation, r *Relation) []*Relation {
	for i, x := range rs {
		if x == r {
			return append(rs[:i], rs[i+1:]...)
		}
	}
	return rs
}

func (s *ModelSpace) relationsFrom(e *Entity) []*Relation {
	rs := s.fromIdx[e]
	out := make([]*Relation, len(rs))
	copy(out, rs)
	return out
}

func (s *ModelSpace) relationsTo(e *Entity) []*Relation {
	rs := s.toIdx[e]
	out := make([]*Relation, len(rs))
	copy(out, rs)
	return out
}

// RelationsFrom returns the live relations with the given source, optionally
// filtered by name ("" matches any name).
func (s *ModelSpace) RelationsFrom(e *Entity, name string) []*Relation {
	return filterRels(s.fromIdx[e], name)
}

// RelationsTo returns the live relations with the given target, optionally
// filtered by name.
func (s *ModelSpace) RelationsTo(e *Entity, name string) []*Relation {
	return filterRels(s.toIdx[e], name)
}

// RelationsOf returns all live relations incident to the entity in either
// direction, optionally filtered by name.
func (s *ModelSpace) RelationsOf(e *Entity, name string) []*Relation {
	out := filterRels(s.fromIdx[e], name)
	for _, r := range s.toIdx[e] {
		if r.from == r.to {
			continue // self-relation already included from the from-index
		}
		if name == "" || r.name == name {
			out = append(out, r)
		}
	}
	return out
}

func filterRels(rs []*Relation, name string) []*Relation {
	var out []*Relation
	for _, r := range rs {
		if name == "" || r.name == name {
			out = append(out, r)
		}
	}
	return out
}

// Relations returns all live relations in creation order, optionally
// filtered by name.
func (s *ModelSpace) Relations(name string) []*Relation {
	var out []*Relation
	for _, r := range s.relSeq {
		if r.deleted {
			continue
		}
		if name == "" || r.name == name {
			out = append(out, r)
		}
	}
	return out
}

// instanceOfRelation is the reserved relation name implementing VPM typing.
const instanceOfRelation = "instanceOf"

// SetInstanceOf types inst by typ, recording both the typing relation and
// the entity-level type cache used by pattern matching.
func (s *ModelSpace) SetInstanceOf(inst, typ *Entity) error {
	if inst == nil || typ == nil || inst.space != s || typ.space != s {
		return fmt.Errorf("vpm: instanceOf: entities not in this space")
	}
	for _, t := range inst.types {
		if t == typ {
			return fmt.Errorf("vpm: %q already instance of %q", inst, typ)
		}
	}
	if _, err := s.NewRelation(instanceOfRelation, inst, typ); err != nil {
		return err
	}
	inst.types = append(inst.types, typ)
	return nil
}

// InstancesOf returns all entities typed by the entity at the given FQN, in
// typing order.
func (s *ModelSpace) InstancesOf(typeFQN string) []*Entity {
	typ, ok := s.Lookup(typeFQN)
	if !ok {
		return nil
	}
	var out []*Entity
	for _, r := range s.toIdx[typ] {
		if r.name == instanceOfRelation && !r.deleted {
			out = append(out, r.from)
		}
	}
	return out
}

// Dump renders the containment tree (entity names, values and types) as an
// indented listing — the quickest way to inspect what the importers and
// transformations materialised.
func (s *ModelSpace) Dump() string {
	var b strings.Builder
	var rec func(e *Entity, depth int)
	rec = func(e *Entity, depth int) {
		for _, c := range e.Children() {
			b.WriteString(strings.Repeat("  ", depth))
			b.WriteString(c.Name())
			if v := c.Value(); v != "" {
				fmt.Fprintf(&b, " = %q", v)
			}
			if ts := c.Types(); len(ts) > 0 {
				names := make([]string, 0, len(ts))
				for _, t := range ts {
					names = append(names, t.Name())
				}
				fmt.Fprintf(&b, " : %s", strings.Join(names, ","))
			}
			b.WriteByte('\n')
			rec(c, depth+1)
		}
	}
	rec(s.root, 0)
	return b.String()
}

// Walk visits every entity below (and excluding) the root in depth-first,
// creation order, calling fn; returning false from fn stops the walk.
func (s *ModelSpace) Walk(fn func(*Entity) bool) {
	var rec func(e *Entity) bool
	rec = func(e *Entity) bool {
		for _, c := range e.Children() {
			if !fn(c) {
				return false
			}
			if !rec(c) {
				return false
			}
		}
		return true
	}
	rec(s.root)
}
