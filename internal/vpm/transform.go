package vpm

import (
	"fmt"
)

// This file provides the rule-based transformation engine that replaces
// VIATRA2's abstract-state-machine transformation programs. A Machine runs
// named rules; each rule couples a graph pattern with an action executed
// once per match. RunOnce applies a single sweep; RunToFixpoint iterates a
// rule until it produces no further matches (with an iteration bound to
// guard against non-terminating rule systems).

// Rule couples a pattern with an action. The action may freely modify the
// model space; matches are computed before the sweep starts, so a rule sees
// a consistent snapshot of its own trigger set.
type Rule struct {
	Name    string
	Pattern *Pattern
	// When is an optional guard evaluated per match; a nil guard accepts
	// every match.
	When func(s *ModelSpace, b Binding) bool
	// Action is executed once per accepted match.
	Action func(s *ModelSpace, b Binding) error
}

// validate checks rule completeness.
func (r *Rule) validate() error {
	if r.Name == "" {
		return fmt.Errorf("vpm: rule without name")
	}
	if r.Pattern == nil {
		return fmt.Errorf("vpm: rule %s: nil pattern", r.Name)
	}
	if r.Action == nil {
		return fmt.Errorf("vpm: rule %s: nil action", r.Name)
	}
	return r.Pattern.Validate()
}

// Machine executes transformation rules against one model space.
type Machine struct {
	space *ModelSpace
	rules map[string]*Rule
	order []string
	// Trace, when non-nil, receives one line per rule application.
	Trace func(rule string, b Binding)
}

// NewMachine creates a transformation machine over the given space.
func NewMachine(s *ModelSpace) *Machine {
	return &Machine{space: s, rules: make(map[string]*Rule)}
}

// Space returns the machine's model space.
func (m *Machine) Space() *ModelSpace { return m.space }

// AddRule registers a rule. Rule names are unique.
func (m *Machine) AddRule(r *Rule) error {
	if r == nil {
		return fmt.Errorf("vpm: nil rule")
	}
	if err := r.validate(); err != nil {
		return err
	}
	if _, dup := m.rules[r.Name]; dup {
		return fmt.Errorf("vpm: duplicate rule %s", r.Name)
	}
	m.rules[r.Name] = r
	m.order = append(m.order, r.Name)
	return nil
}

// Rule looks up a registered rule by name.
func (m *Machine) Rule(name string) (*Rule, bool) {
	r, ok := m.rules[name]
	return r, ok
}

// RunOnce matches the named rule once and applies its action to every
// accepted match, returning the number of applications.
func (m *Machine) RunOnce(name string, seed Binding) (int, error) {
	r, ok := m.rules[name]
	if !ok {
		return 0, fmt.Errorf("vpm: unknown rule %s", name)
	}
	matches, err := r.Pattern.Match(m.space, seed)
	if err != nil {
		return 0, fmt.Errorf("vpm: rule %s: %w", name, err)
	}
	applied := 0
	for _, b := range matches {
		if r.When != nil && !r.When(m.space, b) {
			continue
		}
		if m.Trace != nil {
			m.Trace(name, b)
		}
		if err := r.Action(m.space, b); err != nil {
			return applied, fmt.Errorf("vpm: rule %s: action: %w", name, err)
		}
		applied++
	}
	return applied, nil
}

// RunToFixpoint repeats RunOnce until a sweep applies zero actions, or
// maxSweeps sweeps have run. It returns the total number of applications.
// Reaching the sweep bound is an error: the rule system does not terminate.
func (m *Machine) RunToFixpoint(name string, seed Binding, maxSweeps int) (int, error) {
	if maxSweeps <= 0 {
		return 0, fmt.Errorf("vpm: RunToFixpoint: non-positive sweep bound %d", maxSweeps)
	}
	total := 0
	for i := 0; i < maxSweeps; i++ {
		n, err := m.RunOnce(name, seed)
		total += n
		if err != nil {
			return total, err
		}
		if n == 0 {
			return total, nil
		}
	}
	return total, fmt.Errorf("vpm: rule %s did not reach a fixpoint within %d sweeps", name, maxSweeps)
}

// RunSequence executes the given rules once each, in order, accumulating the
// application count. It aborts on the first error.
func (m *Machine) RunSequence(names ...string) (int, error) {
	total := 0
	for _, n := range names {
		applied, err := m.RunOnce(n, nil)
		total += applied
		if err != nil {
			return total, err
		}
	}
	return total, nil
}
