package vpm

import (
	"fmt"
	"testing"
)

// smallNames is precomputed so alloc-measuring tests do not charge name
// formatting to the space.
var smallNames = func() []string {
	out := make([]string, 20)
	for i := range out {
		out[i] = fmt.Sprintf("n%d", i)
	}
	return out
}()

// buildSmall materialises a small tree with typing and links, mirroring the
// shape of a Step 5 import.
func buildSmall(t testing.TB, s *ModelSpace) {
	t.Helper()
	meta, err := s.EnsureEntity("metamodel.Class")
	if err != nil {
		t.Fatalf("EnsureEntity: %v", err)
	}
	root, err := s.EnsureEntity("models.m.diagrams.d")
	if err != nil {
		t.Fatalf("EnsureEntity: %v", err)
	}
	var prev *Entity
	for _, name := range smallNames {
		e, err := s.NewEntity(root, name)
		if err != nil {
			t.Fatalf("NewEntity: %v", err)
		}
		if err := s.SetInstanceOf(e, meta); err != nil {
			t.Fatalf("SetInstanceOf: %v", err)
		}
		if prev != nil {
			if _, err := s.NewRelation("link", prev, e); err != nil {
				t.Fatalf("NewRelation: %v", err)
			}
		}
		prev = e
	}
}

func countEntities(s *ModelSpace) int {
	n := 0
	s.Walk(func(*Entity) bool { n++; return true })
	return n
}

func TestResetReusesArenaBlocks(t *testing.T) {
	s := NewSpace()
	buildSmall(t, s)
	wantEnts, wantRels := s.NumEntities(), s.NumRelations()
	blocks := len(s.entArena.blocks)

	for i := 0; i < 5; i++ {
		s.Reset()
		if s.NumEntities() != 0 || s.NumRelations() != 0 || countEntities(s) != 0 {
			t.Fatalf("reset %d: space not empty: %d entities, %d relations", i, s.NumEntities(), s.NumRelations())
		}
		buildSmall(t, s)
		if s.NumEntities() != wantEnts || s.NumRelations() != wantRels {
			t.Fatalf("rebuild %d: got %d entities / %d relations, want %d / %d",
				i, s.NumEntities(), s.NumRelations(), wantEnts, wantRels)
		}
		if got := len(s.entArena.blocks); got != blocks {
			t.Fatalf("rebuild %d: entity arena grew to %d blocks, want %d", i, got, blocks)
		}
	}
}

func TestResetImportIsAllocationLean(t *testing.T) {
	s := NewSpace()
	buildSmall(t, s)
	s.Reset()
	// A same-shape rebuild into a reset space reuses arena slots, map
	// buckets and index slices; only incidental growth (map rehash on
	// first insert after clear keeps buckets, so effectively none) and
	// small per-call slices remain. Allow a modest constant budget far
	// below the ~100 allocations a cold build performs.
	allocs := testing.AllocsPerRun(10, func() {
		buildSmall(t, s)
		s.Reset()
	})
	if allocs > 20 {
		t.Fatalf("rebuild after Reset allocates %.0f objects per run, want <= 20", allocs)
	}
}

func TestDeleteEntityRecyclesSlots(t *testing.T) {
	s := NewSpace()
	parent, err := s.EnsureEntity("models.m")
	if err != nil {
		t.Fatalf("EnsureEntity: %v", err)
	}
	blocks := len(s.entArena.blocks)
	for i := 0; i < 10*entityChunk; i++ {
		e, err := s.NewEntity(parent, "scratch")
		if err != nil {
			t.Fatalf("NewEntity: %v", err)
		}
		if err := s.DeleteEntity(e); err != nil {
			t.Fatalf("DeleteEntity: %v", err)
		}
	}
	if got := len(s.entArena.blocks); got != blocks {
		t.Fatalf("create/delete churn grew the arena from %d to %d blocks", blocks, got)
	}
	if s.NumEntities() != 2 { // "models" and "models.m"
		t.Fatalf("NumEntities = %d, want 2", s.NumEntities())
	}
}

func TestRelationChurnCompactsRelSeq(t *testing.T) {
	s := NewSpace()
	a, _ := s.EnsureEntity("a")
	b, _ := s.EnsureEntity("b")
	for i := 0; i < 10*relationChunk; i++ {
		r, err := s.NewRelation("link", a, b)
		if err != nil {
			t.Fatalf("NewRelation: %v", err)
		}
		s.DeleteRelation(r)
	}
	if got := len(s.relArena.blocks); got > 2 {
		t.Fatalf("relation churn grew the arena to %d blocks, want <= 2", got)
	}
	if got := len(s.relSeq); got > 2*64 {
		t.Fatalf("relSeq retained %d slots after churn, want compaction to bound it", got)
	}
	if s.NumRelations() != 0 {
		t.Fatalf("NumRelations = %d, want 0", s.NumRelations())
	}
}

func TestDeletedSubtreeRelationsGone(t *testing.T) {
	s := NewSpace()
	keep, _ := s.EnsureEntity("keep")
	sub, _ := s.EnsureEntity("tmp.child")
	if _, err := s.NewRelation("link", keep, sub); err != nil {
		t.Fatalf("NewRelation: %v", err)
	}
	tmp, _ := s.Lookup("tmp")
	if err := s.DeleteEntity(tmp); err != nil {
		t.Fatalf("DeleteEntity: %v", err)
	}
	if got := s.RelationsFrom(keep, ""); len(got) != 0 {
		t.Fatalf("RelationsFrom(keep) = %v after subtree delete, want none", got)
	}
	if got := len(s.Relations("")); got != 0 {
		t.Fatalf("Relations() = %d live after subtree delete, want 0", got)
	}
	// The index entry for keep must be gone, not an empty slice, so index
	// maps do not accumulate stale recycled-entity keys across resets.
	if _, ok := s.fromIdx[keep]; ok {
		t.Fatal("fromIdx retains an empty entry after its last relation was deleted")
	}
}

func TestGetPutSpaceRoundTrip(t *testing.T) {
	s := GetSpace()
	buildSmall(t, s)
	PutSpace(s)
	s2 := GetSpace()
	defer PutSpace(s2)
	if s2.NumEntities() != 0 || s2.NumRelations() != 0 {
		t.Fatalf("pooled space not empty: %d entities, %d relations", s2.NumEntities(), s2.NumRelations())
	}
	buildSmall(t, s2)
	if _, ok := s2.Lookup("models.m.diagrams.d.n3"); !ok {
		t.Fatal("rebuild into pooled space lost models.m.diagrams.d.n3")
	}
}
