//go:build !race

// Package testutil holds small helpers shared by tests, most notably the
// race-detector flag: testing.AllocsPerRun guards assert exact allocation
// counts that race instrumentation inflates, so strict 0-alloc tests skip
// under -race (the behaviour they pin is still exercised, just not counted).
package testutil

// RaceEnabled reports whether the binary was built with -race.
const RaceEnabled = false
