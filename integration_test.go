package upsim

// Cross-module integration and property tests: random topologies and
// mappings driven through the whole pipeline, checking the invariants that
// Definition 2 and Section V-E promise, plus failure-injection scenarios.

import (
	"math/rand"
	"testing"

	"upsim/internal/modelgen"
	"upsim/internal/topology"
)

// randomInfrastructure converts a generated topology graph into a full UML
// model with the availability profile applied, via the modelgen bridge.
func randomInfrastructure(t *testing.T, g *topology.Graph) *Model {
	t.Helper()
	m, err := modelgen.Build("rand", g, modelgen.Params{
		Default: modelgen.ClassParams{MTBF: 10000, MTTR: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestPipelinePropertyRandomTopologies drives random connected graphs
// through the full pipeline and checks the UPSIM invariants:
//
//   - UPSIM nodes ⊆ infrastructure nodes,
//   - requester and provider of every atomic service are in the UPSIM,
//   - every UPSIM link joins UPSIM nodes and exists in the infrastructure,
//   - the UPSIM is connected whenever it is non-empty,
//   - UPSIM instances expose the class properties (Section V-E),
//   - the traversed merge is a subgraph of the induced merge.
func TestPipelinePropertyRandomTopologies(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 25; trial++ {
		n := 8 + rng.Intn(12)
		density := rng.Float64() * 0.08
		seed := rng.Int63()
		g, err := topology.RandomConnected(n, density, seed)
		if err != nil {
			t.Fatal(err)
		}
		m := randomInfrastructure(t, g)
		names := g.NodeNames()
		req := names[rng.Intn(len(names))]
		prov := names[rng.Intn(len(names))]
		if req == prov {
			continue
		}
		svc, err := NewSequentialService(m, "svc", "a1", "a2")
		if err != nil {
			t.Fatal(err)
		}
		mp := NewMapping()
		if err := mp.Add(Pair{AtomicService: "a1", Requester: req, Provider: prov}); err != nil {
			t.Fatal(err)
		}
		if err := mp.Add(Pair{AtomicService: "a2", Requester: prov, Provider: req}); err != nil {
			t.Fatal(err)
		}
		gen, err := NewGenerator(m, "infrastructure")
		if err != nil {
			t.Fatal(err)
		}
		res, err := gen.Generate(svc, mp, "u", Options{})
		if err != nil {
			t.Fatalf("trial %d (n=%d, density=%.3f, %s->%s): %v", trial, n, density, req, prov, err)
		}

		infra := map[string]bool{}
		for _, nn := range names {
			infra[nn] = true
		}
		for _, nn := range res.NodeNames() {
			if !infra[nn] {
				t.Fatalf("UPSIM node %q not in infrastructure", nn)
			}
		}
		if !res.Graph.HasNode(req) || !res.Graph.HasNode(prov) {
			t.Fatalf("endpoints missing from UPSIM")
		}
		if res.Graph.NumNodes() > 0 && !res.Graph.Connected() {
			t.Fatalf("UPSIM disconnected")
		}
		for _, l := range res.UPSIM.Links() {
			a, b := l.Ends()
			if !res.Graph.HasNode(a.Name()) || !res.Graph.HasNode(b.Name()) {
				t.Fatalf("UPSIM link with missing endpoint")
			}
			if len(res.Source.LinksBetween(a.Name(), b.Name())) == 0 {
				t.Fatalf("UPSIM link %s not in infrastructure", l)
			}
		}
		for _, inst := range res.UPSIM.Instances() {
			if v, ok := inst.Property("MTBF"); !ok || v.AsReal() != 10000 {
				t.Fatalf("instance %s lost its properties", inst)
			}
		}

		trav, err := gen.Generate(svc, mp, "u-trav", Options{Merge: MergeTraversed})
		if err != nil {
			t.Fatal(err)
		}
		if trav.Graph.NumNodes() != res.Graph.NumNodes() {
			t.Fatalf("merge semantics must not change the node set")
		}
		if trav.Graph.NumEdges() > res.Graph.NumEdges() {
			t.Fatalf("traversed merge has more links than induced")
		}

		// The availability analysis runs end to end and stays in bounds,
		// bracketed by Esary–Proschan and confirmed by Monte Carlo.
		st, avail, err := StructureOf(res, ModelExact)
		if err != nil {
			t.Fatal(err)
		}
		exact, err := st.Exact(avail)
		if err != nil {
			t.Fatal(err)
		}
		if exact < 0 || exact > 1 {
			t.Fatalf("availability %v out of range", exact)
		}
		if b, err := st.EsaryProschan(avail, 0); err == nil {
			if b.Lower > exact+1e-9 || exact > b.Upper+1e-9 {
				t.Fatalf("bounds [%v, %v] miss exact %v", b.Lower, b.Upper, exact)
			}
		}
	}
}

// TestFailureInjection removes components from the infrastructure and
// verifies the pipeline degrades as the paper predicts: losing a redundant
// path shrinks the UPSIM, losing the last path is an error.
func TestFailureInjection(t *testing.T) {
	m, err := USIModel()
	if err != nil {
		t.Fatal(err)
	}
	svc, err := USIPrintingService(m)
	if err != nil {
		t.Fatal(err)
	}

	// Build a degraded copy: the same topology with the c1—c2 core link
	// removed (maintenance). The t1→printS pair loses its redundant path
	// but stays connected through c1—d4.
	degraded, err := USIModel()
	if err != nil {
		t.Fatal(err)
	}
	d, _ := degraded.Diagram(USIDiagramName)
	full := d.Links()
	rebuilt := degraded.NewObjectDiagram("degraded")
	for _, inst := range d.Instances() {
		if _, err := rebuilt.AddInstance(inst.Name(), inst.Classifier()); err != nil {
			t.Fatal(err)
		}
	}
	removed := 0
	for _, l := range full {
		a, b := l.Ends()
		if (a.Name() == "c1" && b.Name() == "c2") || (a.Name() == "c2" && b.Name() == "c1") {
			removed++
			continue
		}
		if _, err := rebuilt.ConnectByName(a.Name(), b.Name(), l.Association()); err != nil {
			t.Fatal(err)
		}
	}
	if removed != 1 {
		t.Fatalf("core links removed = %d, want 1", removed)
	}
	dsvc, err := USIPrintingService(degraded)
	if err != nil {
		t.Fatal(err)
	}

	genFull, err := NewGenerator(m, USIDiagramName)
	if err != nil {
		t.Fatal(err)
	}
	genDeg, err := NewGenerator(degraded, "degraded")
	if err != nil {
		t.Fatal(err)
	}
	resFull, err := genFull.Generate(svc, USITableIMapping(), "full", Options{})
	if err != nil {
		t.Fatal(err)
	}
	resDeg, err := genDeg.Generate(dsvc, USITableIMapping(), "deg", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if resDeg.TotalPaths >= resFull.TotalPaths {
		t.Errorf("degraded paths = %d, full = %d", resDeg.TotalPaths, resFull.TotalPaths)
	}
	repFull, err := Analyze(resFull, ModelExact, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	repDeg, err := Analyze(resDeg, ModelExact, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if repDeg.Exact > repFull.Exact {
		t.Errorf("losing redundancy must not improve availability: %v > %v",
			repDeg.Exact, repFull.Exact)
	}

	// Severing the only distribution uplink disconnects the user entirely.
	cut := degraded.NewObjectDiagram("cut")
	for _, inst := range d.Instances() {
		if _, err := cut.AddInstance(inst.Name(), inst.Classifier()); err != nil {
			t.Fatal(err)
		}
	}
	for _, l := range full {
		a, b := l.Ends()
		if (a.Name() == "d1" && b.Name() == "c1") || (a.Name() == "c1" && b.Name() == "d1") {
			continue
		}
		if _, err := cut.ConnectByName(a.Name(), b.Name(), l.Association()); err != nil {
			t.Fatal(err)
		}
	}
	genCut, err := NewGenerator(degraded, "cut")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := genCut.Generate(dsvc, USITableIMapping(), "cut", Options{}); err == nil {
		t.Error("disconnected requester must fail generation")
	}
	res, err := genCut.Generate(dsvc, USITableIMapping(), "cut2", Options{AllowDisconnected: true})
	if err != nil {
		t.Fatal(err)
	}
	// The printer-side pairs still have paths; the client-side pair has
	// none.
	if ps, _ := res.PathsFor("Request printing"); len(ps) != 0 {
		t.Errorf("cut client still has %d paths", len(ps))
	}
	if ps, _ := res.PathsFor("Login to printer"); len(ps) == 0 {
		t.Error("printer-side pair should still have paths")
	}
}

// topologyCampus is a small generated campus used by facade tests.
func topologyCampus() (*topology.Graph, error) {
	return topology.Campus(topology.CampusParams{
		EdgeSwitches: 2, ClientsPerEdge: 2, ServersPerSwitch: 1, RedundantCore: false,
	})
}
