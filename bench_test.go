package upsim

// Benchmarks regenerating every table and figure of the paper plus the
// extended scalability and ablation studies (see DESIGN.md, "Experiment
// index"). Run with:
//
//	go test -bench=. -benchmem
//
// Naming follows the experiment IDs: F9 infrastructure, F11/F12 UPSIMs, P1
// the Section VI-G path discovery, E-AV the Section VII availability
// analysis, E-SCAL the Section V-D scalability study, E-DYN the Section
// V-A3 dynamicity study.

import (
	"bytes"
	"fmt"
	"sync/atomic"
	"testing"

	"upsim/internal/pathdisc"
	"upsim/internal/topology"
)

// benchSeq disambiguates UPSIM names across benchmark re-invocations (the
// testing package calls each benchmark function several times with growing
// b.N against shared generators).
var benchSeq atomic.Int64

func benchName(prefix string) string {
	return fmt.Sprintf("%s-%d", prefix, benchSeq.Add(1))
}

// mustBase builds the shared case-study fixtures.
func mustBase(b *testing.B) (*Model, *Composite, *Generator) {
	b.Helper()
	m, err := USIModel()
	if err != nil {
		b.Fatal(err)
	}
	svc, err := USIPrintingService(m)
	if err != nil {
		b.Fatal(err)
	}
	gen, err := NewGenerator(m, USIDiagramName)
	if err != nil {
		b.Fatal(err)
	}
	return m, svc, gen
}

// BenchmarkBuildInfrastructure regenerates Figures 5/8/9: profiles, classes
// and the full infrastructure object diagram.
func BenchmarkBuildInfrastructure(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := USIModel(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkImportModel measures Step 5: the UML native import of the USI
// model into a fresh model space.
func BenchmarkImportModel(b *testing.B) {
	m, err := USIModel()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := NewGenerator(m, USIDiagramName); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkUPSIMT1P2 regenerates Figure 11 (Steps 6-8 for the Table I
// perspective).
func BenchmarkUPSIMT1P2(b *testing.B) {
	_, svc, gen := mustBase(b)
	mp := USITableIMapping()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := gen.Generate(svc, mp, benchName("b11"), Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkUPSIMT15P3 regenerates Figure 12 (the mapping-only perspective
// change of Section VI-H).
func BenchmarkUPSIMT15P3(b *testing.B) {
	_, svc, gen := mustBase(b)
	mp := USIT15P3Mapping()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := gen.Generate(svc, mp, benchName("b12"), Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPathDiscoveryCampus regenerates the Section VI-G enumeration
// (first Table I pair, t1 → printS).
func BenchmarkPathDiscoveryCampus(b *testing.B) {
	_, _, gen := mustBase(b)
	g := gen.Graph()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := AllPaths(g, "t1", "printS", PathOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAvailability regenerates the Section VII analysis: UPSIM →
// structure function → exact availability (E-AV).
func BenchmarkAvailability(b *testing.B) {
	_, svc, gen := mustBase(b)
	res, err := gen.Generate(svc, USITableIMapping(), "bav", Options{})
	if err != nil {
		b.Fatal(err)
	}
	st, avail, err := StructureOf(res, ModelExact)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := st.Exact(avail); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMonteCarlo is the simulative counterpart of E-AV (100k samples).
func BenchmarkMonteCarlo(b *testing.B) {
	_, svc, gen := mustBase(b)
	res, err := gen.Generate(svc, USITableIMapping(), "bmc", Options{})
	if err != nil {
		b.Fatal(err)
	}
	st, avail, err := StructureOf(res, ModelExact)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := st.MonteCarlo(avail, 100000, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRemapOnly measures the E-DYN claim: deriving a new user
// perspective is one mapping clone + remap, not a model rebuild.
func BenchmarkRemapOnly(b *testing.B) {
	base := USITableIMapping()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mp := base.Clone()
		if _, err := mp.RemapComponent("t1", "t15"); err != nil {
			b.Fatal(err)
		}
		if _, err := mp.RemapComponent("p2", "p3"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPathDiscovery is the E-SCAL study (Section V-D): enumeration
// effort by topology family and size. Trees and campus networks stay flat;
// meshes exhibit the factorial blow-up the paper warns about.
func BenchmarkPathDiscovery(b *testing.B) {
	type tc struct {
		name     string
		g        *topology.Graph
		src, dst string
	}
	var cases []tc
	for _, depth := range []int{4, 6, 8} {
		g, err := topology.Tree(2, depth)
		if err != nil {
			b.Fatal(err)
		}
		cases = append(cases, tc{fmt.Sprintf("tree/depth=%d", depth), g, "n0", fmt.Sprintf("n%d", g.NumNodes()-1)})
	}
	for _, edges := range []int{4, 8, 16} {
		g, err := topology.Campus(topology.CampusParams{
			EdgeSwitches: edges, ClientsPerEdge: 3, ServersPerSwitch: 3, RedundantCore: true,
		})
		if err != nil {
			b.Fatal(err)
		}
		cases = append(cases, tc{fmt.Sprintf("campus/edges=%d", edges), g, "t1", "srv1"})
	}
	for _, p := range []float64{0.02, 0.03, 0.04} {
		g, err := topology.RandomConnected(30, p, 1)
		if err != nil {
			b.Fatal(err)
		}
		cases = append(cases, tc{fmt.Sprintf("random/loops=%.2f", p), g, "n0", "n29"})
	}
	for _, n := range []int{6, 7, 8} {
		g, err := topology.Mesh(n)
		if err != nil {
			b.Fatal(err)
		}
		cases = append(cases, tc{fmt.Sprintf("mesh/n=%d", n), g, "n0", fmt.Sprintf("n%d", n-1)})
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			var paths int
			for i := 0; i < b.N; i++ {
				ps, _, err := pathdisc.AllPaths(c.g, c.src, c.dst, pathdisc.Options{})
				if err != nil {
					b.Fatal(err)
				}
				paths = len(ps)
			}
			b.ReportMetric(float64(paths), "paths")
		})
	}
}

// BenchmarkDFSVariants is the algorithm ablation: recursive (the paper's
// choice) vs iterative vs parallel DFS on the same dense graph.
func BenchmarkDFSVariants(b *testing.B) {
	g, err := topology.Mesh(8)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("recursive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := pathdisc.AllPaths(g, "n0", "n7", pathdisc.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("iterative", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := pathdisc.AllPathsIterative(g, "n0", "n7", pathdisc.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("parallel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := pathdisc.AllPathsParallel(g, "n0", "n7", pathdisc.Options{}, 0); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkMergeSemantics is the merge ablation: induced (the paper's
// filter) vs traversed-only link sets.
func BenchmarkMergeSemantics(b *testing.B) {
	_, svc, gen := mustBase(b)
	mp := USITableIMapping()
	b.Run("induced", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := gen.Generate(svc, mp, benchName("bi"), Options{Merge: MergeInduced}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("traversed", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := gen.Generate(svc, mp, benchName("bt"), Options{Merge: MergeTraversed}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkShortestAblation compares Definition 2 (all redundant paths)
// against the shortest-path-only ablation.
func BenchmarkShortestAblation(b *testing.B) {
	_, svc, gen := mustBase(b)
	mp := USITableIMapping()
	b.Run("all-paths", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := gen.Generate(svc, mp, benchName("ba"), Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("shortest", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := gen.Generate(svc, mp, benchName("bs"), Options{Algorithm: AlgoShortest}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkModelXML measures the serialisation round trip of the full USI
// model (the artefact exchange format of Steps 1-4).
func BenchmarkModelXML(b *testing.B) {
	m, err := USIModel()
	if err != nil {
		b.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteModel(&buf, m); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.Run("encode", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			var out bytes.Buffer
			if err := WriteModel(&out, m); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("decode", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := ReadModel(bytes.NewReader(data)); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkMappingXML measures the Figure 3 codec.
func BenchmarkMappingXML(b *testing.B) {
	mp := USITableIMapping()
	var buf bytes.Buffer
	if err := WriteMapping(&buf, mp); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.Run("encode", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			var out bytes.Buffer
			if err := WriteMapping(&out, mp); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("decode", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := ReadMapping(bytes.NewReader(data)); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkCutSets measures the minimal-cut-set transversal on the
// case-study structure (E-IMP).
func BenchmarkCutSets(b *testing.B) {
	_, svc, gen := mustBase(b)
	res, err := gen.Generate(svc, USITableIMapping(), "bcut", Options{})
	if err != nil {
		b.Fatal(err)
	}
	st, _, err := StructureOf(res, ModelExact)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := st.MinimalCutSets(0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSensitivity measures the class-level sensitivity analysis
// (E-SENS: one Birnbaum evaluation per component).
func BenchmarkSensitivity(b *testing.B) {
	_, svc, gen := mustBase(b)
	res, err := gen.Generate(svc, USITableIMapping(), "bsens", Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := AnalyzeSensitivity(res); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkQoS measures the performability + responsiveness analyses
// (E-QOS).
func BenchmarkQoS(b *testing.B) {
	_, svc, gen := mustBase(b)
	res, err := gen.Generate(svc, USITableIMapping(), "bqos", Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := AnalyzeThroughput(res); err != nil {
			b.Fatal(err)
		}
		if _, err := AnalyzeResponsiveness(res, ModelExact, 5); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMonteCarloParallel compares the worker-pool Monte Carlo against
// the serial engine at 100k samples.
func BenchmarkMonteCarloParallel(b *testing.B) {
	_, svc, gen := mustBase(b)
	res, err := gen.Generate(svc, USITableIMapping(), "bmcp", Options{})
	if err != nil {
		b.Fatal(err)
	}
	st, avail, err := StructureOf(res, ModelExact)
	if err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := st.MonteCarloParallel(avail, 100000, int64(i), workers); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkVTCL measures pattern parsing and matching against the imported
// case-study space.
func BenchmarkVTCL(b *testing.B) {
	src := `pattern printers(P, C) = {
		instanceOf(P, "metamodel.uml.InstanceSpecification");
		directed(P, "classifier", C);
		name(C, "Printer");
	}`
	b.Run("parse", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := ParsePatterns(src); err != nil {
				b.Fatal(err)
			}
		}
	})
	_, _, gen := mustBase(b)
	pats, err := ParsePatterns(src)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("match", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ms, err := pats[0].Match(gen.Space(), nil)
			if err != nil || len(ms) != 3 {
				b.Fatalf("matches = %d, %v", len(ms), err)
			}
		}
	})
}

// BenchmarkCountPathsFatTree measures the streaming counter on a dense
// data-center topology (E-SCAL).
func BenchmarkCountPathsFatTree(b *testing.B) {
	g, err := topology.FatTree(4)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n, _, err := CountPaths(g, "h0-0-0", "h3-1-1", PathOptions{})
		if err != nil || n == 0 {
			b.Fatalf("count = %d, %v", n, err)
		}
	}
}
