// Package upsim generates and analyses user-perceived service
// infrastructure models (UPSIMs), reproducing Dittrich, Kaitovic, Murillo
// and Rezende, "A Model for Evaluation of User-Perceived Service
// Properties" (IPDPS Workshops 2013).
//
// A UPSIM is the part of an ICT infrastructure that one specific pair of
// service requester and provider actually uses: given a UML-style model of
// the network (classes with static MTBF/MTTR attributes via profiles, an
// object diagram for the deployed topology), a composite service described
// as an activity diagram over atomic services, and an XML mapping binding
// every atomic service to a (requester, provider) pair, the Generator
// discovers all simple paths per atomic service and merges them into a new
// object diagram whose elements keep all class properties — ready for
// user-perceived dependability analysis (availability via reliability block
// diagrams, fault trees, exact structure-function evaluation and Monte
// Carlo simulation).
//
// The package is a facade over the implementation packages under internal/;
// it re-exports the model types and wires the common workflows:
//
//	m, _ := upsim.USIModel()                  // or build/load your own
//	svc, _ := upsim.USIPrintingService(m)
//	gen, _ := upsim.NewGenerator(m, upsim.USIDiagramName)
//	res, _ := gen.Generate(svc, upsim.USITableIMapping(), "t1-to-p2", upsim.Options{})
//	rep, _ := upsim.Analyze(res, upsim.ModelExact, 100000, 1)
//	fmt.Println(res.NodeNames(), rep.Exact)
package upsim

import (
	"bytes"
	"context"
	"io"
	"log/slog"
	"net/http"
	"sort"

	"upsim/internal/cache"
	"upsim/internal/casestudy"
	"upsim/internal/core"
	"upsim/internal/depend"
	"upsim/internal/explain"
	"upsim/internal/lint"
	"upsim/internal/mapping"
	"upsim/internal/modelgen"
	"upsim/internal/obs"
	"upsim/internal/pathdisc"
	"upsim/internal/rbdgen"
	"upsim/internal/service"
	"upsim/internal/topology"
	"upsim/internal/uml"
	"upsim/internal/vpm"
	"upsim/internal/vtcl"
	"upsim/internal/whatif"
	"upsim/internal/workspace"
)

// UML model building blocks (see the uml implementation package for full
// documentation of each type).
type (
	// Model is the root UML model container: profiles, classes,
	// associations, object diagrams and activities.
	Model = uml.Model
	// Profile groups stereotypes, e.g. the availability profile.
	Profile = uml.Profile
	// Stereotype extends the Class or Association metaclass with typed
	// attributes.
	Stereotype = uml.Stereotype
	// Class describes one ICT component type with static attributes.
	Class = uml.Class
	// Association is a possible connection between two component classes.
	Association = uml.Association
	// ObjectDiagram is a deployed topology (and the UPSIM output form).
	ObjectDiagram = uml.ObjectDiagram
	// InstanceSpecification is one deployed component ("t1:Comp").
	InstanceSpecification = uml.InstanceSpecification
	// Link is one deployed connection between two instances.
	Link = uml.Link
	// Activity is a composite-service description as a flow of actions.
	Activity = uml.Activity
	// Value is a typed UML attribute value.
	Value = uml.Value
)

// Service and mapping types.
type (
	// Composite is a validated composite service over an activity diagram.
	Composite = service.Composite
	// Mapping binds atomic services to (requester, provider) pairs.
	Mapping = mapping.Mapping
	// Pair is one service mapping pair.
	Pair = mapping.Pair
)

// Generation pipeline types.
type (
	// Generator runs Steps 5–8 of the methodology.
	Generator = core.Generator
	// Options tunes path discovery and merge semantics.
	Options = core.Options
	// Result is one generated UPSIM with its per-service path sets.
	Result = core.Result
	// ServicePaths is the Step 7 output for one atomic service.
	ServicePaths = core.ServicePaths
	// Path is one simple requester→provider path.
	Path = pathdisc.Path
	// PathOptions tunes path enumeration (depth/count bounds).
	PathOptions = pathdisc.Options
	// PathStats reports the search effort of one enumeration.
	PathStats = pathdisc.Stats
	// Graph is the topology view used by path discovery.
	Graph = topology.Graph
	// CostMetric selects the edge-cost model for ranked path discovery
	// (CompiledGraph.KShortest): hop count, or stereotype throughput.
	CostMetric = pathdisc.CostMetric
	// EdgeCostFunc resolves a topology edge ID to its throughput in Mbps for
	// CompiledGraph.SetEdgeCosts; ok=false selects the hop-cost fallback.
	EdgeCostFunc = pathdisc.EdgeCostFunc
	// PathLimitError is the structured budget error returned when a
	// discovery exceeds its enumeration hard limit (kind "paths") or the
	// ranked work envelope (kind "kbest").
	PathLimitError = pathdisc.LimitError
)

// Cost metrics for ranked path discovery (PathOptions.CostMetric).
const (
	// CostHops ranks paths by hop count (the zero value).
	CostHops = pathdisc.CostHops
	// CostThroughput ranks by summed 1/throughput of the traversed links,
	// using the cost view installed by CompiledGraph.SetEdgeCosts (a
	// Generator installs it from the model's Communication stereotypes).
	CostThroughput = pathdisc.CostThroughput
)

// ParseCostMetric maps the wire names "hops" and "throughput" (or "") to a
// CostMetric.
func ParseCostMetric(s string) (CostMetric, error) { return pathdisc.ParseCostMetric(s) }

// Caching types (see internal/cache).
type (
	// Cache is the content-addressed, LRU-bounded generation-result cache
	// with singleflight deduplication. Attach one to a Generator with
	// Generator.WithCache; all methods are safe for concurrent use.
	Cache = cache.Cache
	// CacheStats is a point-in-time snapshot of one cache's counters.
	CacheStats = cache.Stats
	// CacheOutcome classifies how Cache.Do obtained a value (miss, hit or
	// singleflight-shared).
	CacheOutcome = cache.Outcome
)

// DefaultCacheSize is the capacity selected by NewCache(0).
const DefaultCacheSize = cache.DefaultMaxEntries

// NewCache returns an empty generation cache bounded to maxEntries results;
// maxEntries <= 0 selects DefaultCacheSize. A cache can back any number of
// Generators: results are addressed by request content, not by instance.
func NewCache(maxEntries int) *Cache { return cache.New(maxEntries) }

// AllPaths enumerates all simple paths between two components of a topology
// graph using the paper's DFS with path tracking.
func AllPaths(g *Graph, from, to string, opts PathOptions) ([]Path, PathStats, error) {
	return pathdisc.AllPaths(g, from, to, opts)
}

// CompiledGraph is a topology lowered into a CSR (compressed sparse row)
// integer-indexed form by Compile. Its enumeration methods (AllPaths,
// AllPathsIterative, AllPathsParallel) return exactly the same path sets as
// the package-level functions but skip the per-call map allocations and
// prune expansions that cannot reach the provider. A CompiledGraph is
// immutable and safe for concurrent use; Generators compile their
// infrastructure graph automatically (Generator.Compiled).
type CompiledGraph = pathdisc.Compiled

// Compile lowers a topology graph into its CSR form once, so that repeated
// path enumerations against the same topology amortise the string-to-index
// mapping and adjacency layout. See ExampleCompile.
func Compile(g *Graph) *CompiledGraph { return pathdisc.Compile(g) }

// CountPaths counts all simple paths without storing them — the memory-safe
// choice for the dense-graph scalability studies.
func CountPaths(g *Graph, from, to string, opts PathOptions) (int, PathStats, error) {
	return pathdisc.CountPaths(g, from, to, opts)
}

// UPSIMDiff describes how the user-perceived infrastructure changes between
// two generated UPSIMs (added/removed/kept components and links).
type UPSIMDiff = core.Diff

// CompareResults diffs two generation results — the operational view of the
// paper's dynamicity scenarios (which components enter and leave a user's
// perceived infrastructure when they move or a service migrates).
func CompareResults(from, to *Result) (*UPSIMDiff, error) { return core.Compare(from, to) }

// Pattern is a declarative graph pattern over the model space.
type Pattern = vpm.Pattern

// ParsePatterns parses a VTCL-style pattern file (see internal/vtcl) into
// executable model-space patterns.
func ParsePatterns(src string) ([]*Pattern, error) { return vtcl.Parse(src) }

// PatternBinding maps pattern variables to matched model-space entities.
type PatternBinding = vpm.Binding

// GenerateRBD materialises the reliability-block-diagram model of a
// generated UPSIM inside the generator's model space (the companion
// transformation "[20]" of the paper) and returns the RBD root entity
// together with its evaluatable block form. avail maps device names to
// availabilities (see StructureOf for the full component model including
// connectors).
func GenerateRBD(gen *Generator, upsimName string, avail map[string]float64) (*RBDEntity, Block, error) {
	root, err := rbdgen.Transform(gen.Space(), upsimName, avail)
	if err != nil {
		return nil, nil, err
	}
	block, err := rbdgen.ToBlock(root)
	if err != nil {
		return nil, nil, err
	}
	return root, block, nil
}

// RBDEntity is a node of the generated RBD model tree.
type RBDEntity = vpm.Entity

// RenderRBD prints an RBD model tree as an indented diagram.
func RenderRBD(root *RBDEntity) string { return rbdgen.Render(root) }

// ThroughputReport is the performability analysis of a UPSIM (Section VII's
// "performability"): widest-path bottleneck throughput per atomic service
// and end to end.
type ThroughputReport = depend.ThroughputReport

// AnalyzeThroughput computes the performability report from the
// Communication profile's throughput attributes on the traversed links.
func AnalyzeThroughput(res *Result) (*ThroughputReport, error) { return depend.Throughput(res) }

// ResponsivenessReport relates timely delivery under a hop budget to plain
// availability (Section VII's "responsiveness").
type ResponsivenessReport = depend.ResponsivenessReport

// AnalyzeResponsiveness computes the probability of timely service delivery
// for a hop budget: the availability over budget-respecting paths only.
func AnalyzeResponsiveness(res *Result, model depend.AvailabilityModel, maxHops int) (*ResponsivenessReport, error) {
	return depend.Responsiveness(res, model, maxHops)
}

// SensitivityReport ranks component classes by how much a class-wide MTBF
// or MTTR change moves the user-perceived availability (the paper's
// "changes ... in the class description ... reflect to all objects" lever).
type SensitivityReport = depend.SensitivityReport

// AnalyzeSensitivity computes the class-level availability sensitivities of
// a generated UPSIM.
func AnalyzeSensitivity(res *Result) (*SensitivityReport, error) { return depend.Sensitivity(res) }

// Workspace is an on-disk project directory: model.xml plus per-perspective
// mapping files and VTCL pattern files (the Eclipse-workspace analogue).
type Workspace = workspace.Workspace

// InitWorkspace creates the project layout in dir and writes the model.
func InitWorkspace(dir string, m *Model) (*Workspace, error) { return workspace.Init(dir, m) }

// LoadWorkspace opens and validates a project directory.
func LoadWorkspace(dir string) (*Workspace, error) { return workspace.Load(dir) }

// BuildModelFromTopology synthesises a complete, validated UML model from a
// topology graph (one class per node kind with the availability profile
// applied) — the bridge for running generated topologies such as fat-trees
// through the full pipeline.
func BuildModelFromTopology(name string, g *Graph, params modelgen.Params) (*Model, error) {
	return modelgen.Build(name, g, params)
}

// TopologyParams re-exports the modelgen parameters.
type TopologyParams = modelgen.Params

// TopologyClassParams carries per-class MTBF/MTTR for BuildModelFromTopology.
type TopologyClassParams = modelgen.ClassParams

// Dependability analysis types.
type (
	// ServiceStructure is the availability structure function of a service.
	ServiceStructure = depend.ServiceStructure
	// CompiledStructure is the interned bitset form of a ServiceStructure:
	// same analyses, bit-identical results, compiled once.
	CompiledStructure = depend.CompiledStructure
	// AnalyzeOptions selects the analysis kernel and Monte Carlo sampler.
	AnalyzeOptions = depend.AnalyzeOptions
	// Report is the end-to-end availability analysis of one UPSIM.
	Report = depend.Report
	// Block is an RBD node (Basic, Series, Parallel, KofN).
	Block = depend.Block
	// FTNode is a fault-tree node (BasicEvent, AndGate, OrGate, VoteGate).
	FTNode = depend.FTNode
)

// Algorithm and merge-semantics selectors for Options.
const (
	AlgoRecursive = core.AlgoRecursive
	AlgoIterative = core.AlgoIterative
	AlgoParallel  = core.AlgoParallel
	AlgoShortest  = core.AlgoShortest

	MergeInduced   = core.MergeInduced
	MergeTraversed = core.MergeTraversed
)

// Availability-model selectors for Analyze.
const (
	// ModelExact derives component availability as MTBF/(MTBF+MTTR).
	ModelExact = depend.ModelExact
	// ModelFormula1 uses the paper's Formula 1, 1 − MTTR/MTBF.
	ModelFormula1 = depend.ModelFormula1
)

// NewModel creates an empty UML model.
func NewModel(name string) *Model { return uml.NewModel(name) }

// NewProfile creates an empty UML profile.
func NewProfile(name string) *Profile { return uml.NewProfile(name) }

// ReadModel decodes a model from the XML dialect written by WriteModel.
func ReadModel(r io.Reader) (*Model, error) { return uml.Decode(r) }

// WriteModel encodes a model as XML.
func WriteModel(w io.Writer, m *Model) error { return uml.Encode(w, m) }

// CloneModel deep-copies a model through its canonical serialisation, so
// what-if edits (failure injection, topology changes) can run against a copy
// while the original stays pristine.
func CloneModel(m *Model) (*Model, error) {
	var buf bytes.Buffer
	if err := uml.Encode(&buf, m); err != nil {
		return nil, err
	}
	return uml.Decode(&buf)
}

// NewMapping creates an empty service mapping.
func NewMapping() *Mapping { return mapping.New() }

// ReadMapping decodes a service mapping from the paper's Figure 3 XML
// dialect.
func ReadMapping(r io.Reader) (*Mapping, error) { return mapping.Parse(r) }

// WriteMapping encodes a service mapping as XML.
func WriteMapping(w io.Writer, m *Mapping) error { return m.Encode(w) }

// NewSequentialService builds a strictly sequential composite service.
func NewSequentialService(m *Model, name string, atomics ...string) (*Composite, error) {
	return service.NewSequential(m, name, atomics...)
}

// NewStagedService builds a composite service from execution stages; the
// atomic services of one stage run in parallel between fork and join.
func NewStagedService(m *Model, name string, stages [][]string) (*Composite, error) {
	return service.NewStaged(m, name, stages)
}

// ServiceFromActivity wraps an existing activity diagram as a composite
// service.
func ServiceFromActivity(act *Activity) (*Composite, error) {
	return service.FromActivity(act)
}

// NewGenerator imports the model into a fresh model space (Step 5) and
// prepares generation against the named infrastructure object diagram.
func NewGenerator(m *Model, diagramName string) (*Generator, error) {
	return core.NewGenerator(m, diagramName)
}

// NewGeneratorContext is NewGenerator with trace propagation: when ctx
// carries a span (see StartSpan) the model import records a child span.
func NewGeneratorContext(ctx context.Context, m *Model, diagramName string) (*Generator, error) {
	return core.NewGeneratorContext(ctx, m, diagramName)
}

// Analyze runs the Section VII dependability analysis on a generated UPSIM:
// per-component availability from MTBF/MTTR, exact structure-function
// evaluation, RBD and fault-tree approximations, and a Monte-Carlo check.
func Analyze(res *Result, model depend.AvailabilityModel, mcSamples int, seed int64) (*Report, error) {
	return depend.Analyze(res, model, mcSamples, seed)
}

// AnalyzeContext is Analyze with trace propagation: each analysis stage
// (structure extraction, kernel compilation, exact, RBD, fault tree, Monte
// Carlo) records a child span on the ctx span. Evaluation runs on the
// compiled bitset kernel; use AnalyzeWithOptions to opt out.
func AnalyzeContext(ctx context.Context, res *Result, model depend.AvailabilityModel, mcSamples int, seed int64) (*Report, error) {
	return depend.AnalyzeContext(ctx, res, model, mcSamples, seed)
}

// AnalyzeWithOptions is AnalyzeContext with explicit kernel (legacy ablation
// flag) and Monte Carlo worker selection.
func AnalyzeWithOptions(ctx context.Context, res *Result, model depend.AvailabilityModel, mcSamples int, seed int64, opts AnalyzeOptions) (*Report, error) {
	return depend.AnalyzeWithOptions(ctx, res, model, mcSamples, seed, opts)
}

// StructureOf extracts the service structure function and component
// availability table from a generated UPSIM for custom analysis.
func StructureOf(res *Result, model depend.AvailabilityModel) (*ServiceStructure, map[string]float64, error) {
	st, _, avail, err := depend.FromResult(res, model)
	return st, avail, err
}

// CompiledStructureOf is StructureOf returning the compiled bitset kernel
// alongside the legacy structure.
func CompiledStructureOf(res *Result, model depend.AvailabilityModel) (*ServiceStructure, *CompiledStructure, map[string]float64, error) {
	return depend.FromResult(res, model)
}

// CompileStructure lowers a service structure into its interned bitset form.
func CompileStructure(s *ServiceStructure) *CompiledStructure {
	return depend.Compile(s)
}

// Availability returns MTBF/(MTBF+MTTR).
func Availability(mtbf, mttr float64) (float64, error) { return depend.Availability(mtbf, mttr) }

// AvailabilityFormula1 returns the paper's approximation 1 − MTTR/MTBF.
func AvailabilityFormula1(mtbf, mttr float64) (float64, error) {
	return depend.AvailabilityFormula1(mtbf, mttr)
}

// ToDOT renders a topology graph (infrastructure or UPSIM) as Graphviz DOT.
func ToDOT(g *Graph, title string) string { return topology.ToDOT(g, title) }

// --- Case study (Section VI): the USI service network ---

// USIDiagramName is the name of the infrastructure object diagram in the
// case-study model.
const USIDiagramName = casestudy.DiagramName

// USIModel builds the University of Lugano case-study model: availability
// and network profiles (Figures 6–7), component classes (Figure 8) and the
// campus topology (Figures 5/9).
func USIModel() (*Model, error) { return casestudy.BuildModel() }

// USIPrintingService models the Figure 10 printing service in the given
// model.
func USIPrintingService(m *Model) (*Composite, error) { return casestudy.PrintingService(m) }

// USIBackupService models the auxiliary backup composite service.
func USIBackupService(m *Model) (*Composite, error) { return casestudy.BackupService(m) }

// USITableIMapping returns the Table I mapping (client t1, printer p2,
// server printS).
func USITableIMapping() *Mapping { return casestudy.TableIMapping() }

// USIT15P3Mapping returns the second perspective of Section VI-H (client
// t15, printer p3).
func USIT15P3Mapping() *Mapping { return casestudy.T15P3Mapping() }

// USIBackupMapping returns the mapping for the backup service from client
// t7.
func USIBackupMapping() *Mapping { return casestudy.BackupMapping() }

// Bounds holds the Esary–Proschan availability bounds returned by
// ServiceStructure.EsaryProschan.
type Bounds = depend.Bounds

// --- Linting (internal/lint) ---

// Lint types: the static-analysis engine over the four model artifacts.
type (
	// LintRule is one static-analysis check (ID, severity, doc, Check).
	LintRule = lint.Rule
	// LintRegistry is an ordered rule set; extend Default with Register.
	LintRegistry = lint.Registry
	// LintInput bundles the artifacts one lint run analyses.
	LintInput = lint.Input
	// LintDiagnostic is one finding (rule, severity, element, message, hint).
	LintDiagnostic = lint.Diagnostic
	// LintReport aggregates the findings of one run, errors first.
	LintReport = lint.Report
	// LintSeverity grades a diagnostic (info, warning, error).
	LintSeverity = lint.Severity
)

// Lint severity levels.
const (
	LintInfo    = lint.SeverityInfo
	LintWarning = lint.SeverityWarning
	LintError   = lint.SeverityError
)

// Lint-gate modes for Options.Lint (pre-flight lint inside Generate).
const (
	LintOff  = core.LintOff
	LintWarn = core.LintWarn
	LintFail = core.LintFail
)

// Lint runs every built-in rule over a model, its named infrastructure
// diagram (may be empty for model-only runs), a composite service and a
// mapping (both may be nil) and returns the aggregated report. It never
// fails on findings — inspect Report.HasErrors or use Report.Err.
func Lint(m *Model, diagramName string, svc *Composite, mp *Mapping) (*LintReport, error) {
	in, err := lint.NewInput(m, diagramName, svc, mp)
	if err != nil {
		return nil, err
	}
	return lint.Default().Run(in)
}

// LintRules returns the built-in rule set in registration order.
func LintRules() []LintRule { return lint.Default().Rules() }

// NewLintRegistry returns a registry preloaded with the built-in rules;
// callers may Register additional project-specific rules and Run it.
func NewLintRegistry() *LintRegistry { return lint.Default() }

// AsLintError extracts the lint report carried by an error returned from a
// LintFail-gated generation.
func AsLintError(err error) (*lint.Error, bool) { return lint.AsError(err) }

// DecodeLintReport reads a report previously written by LintReport.EncodeJSON.
func DecodeLintReport(r io.Reader) (*LintReport, error) { return lint.DecodeReport(r) }

// --- Observability (internal/obs) ---

// Span is one node of a trace tree recorded by StartSpan.
type Span = obs.Span

// SpanAttr is one key/value annotation on a Span.
type SpanAttr = obs.Attr

// StartSpan opens a trace span as a child of the span carried by ctx (or as
// a root span) and returns a ctx carrying the new span. The pipeline stages
// of Generator and the availability analysis attach their own child spans
// when called through the *Context variants, so a caller that opens a root
// span around a run can print the whole tree with Span.Render.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	return obs.StartSpan(ctx, name)
}

// SpanFromContext returns the span carried by ctx, or nil.
func SpanFromContext(ctx context.Context) *Span { return obs.FromContext(ctx) }

// MetricsHandler serves the process metrics registry in Prometheus text
// exposition format (what internal/server mounts on GET /metrics).
func MetricsHandler() http.Handler { return obs.Handler() }

// Logger returns the process-wide structured logger used by the library.
func Logger() *slog.Logger { return obs.Logger() }

// SetLogger swaps the process-wide structured logger; nil restores the
// default stderr text logger.
func SetLogger(l *slog.Logger) { obs.SetLogger(l) }

// --- Provenance & attribution (internal/explain) ---

type (
	// ExplainOptions tunes Explain (kernel, availability model, top-N
	// ranking cut-off, cut-set budget).
	ExplainOptions = explain.Options
	// ExplainReport is the provenance & attribution report: per-path
	// records and statistics, discovery trees and the availability
	// attribution.
	ExplainReport = explain.Report
	// ServiceProvenance is one atomic service's share of an ExplainReport.
	ServiceProvenance = explain.ServiceProvenance
	// PathRecord is the provenance of one discovered path.
	PathRecord = explain.PathRecord
	// PathStatistics aggregates a path set (lengths, direct/transitive
	// split, depth histogram).
	PathStatistics = explain.PathStatistics
	// DiscoveryTree is the prefix-merged view of an atomic service's paths,
	// rooted at the requester.
	DiscoveryTree = explain.TreeNode
	// Attribution ranks cut sets and components by their contribution to
	// service unavailability.
	Attribution = explain.Attribution
	// ComponentImportance is one component's Birnbaum and Fussell–Vesely
	// importance.
	ComponentImportance = explain.ComponentImportance
	// CutSetRecord is one minimal cut set with its unavailability share.
	CutSetRecord = explain.CutSetRecord
	// Validation is the freshness verdict of ValidateUPSIM.
	Validation = explain.Validation
	// ValidationIssue is one reason a cached generation is stale.
	ValidationIssue = explain.Issue
	// BudgetError is the structured analysis-budget exhaustion error
	// (cut-set expansion limits), carrying the budget kind, the atomic
	// service and the limit.
	BudgetError = depend.BudgetError
)

// Explain builds the provenance & attribution report for a generation: where
// every availability number comes from. The report is bit-identical under the
// compiled and legacy kernels.
func Explain(ctx context.Context, res *Result, opts ExplainOptions) (*ExplainReport, error) {
	return explain.Explain(ctx, res, opts)
}

// ValidateUPSIM checks a cached generation against a current topology
// diagram and reports whether its paths — and every analysis derived from
// them — still describe the infrastructure, with the reasons when not.
func ValidateUPSIM(ctx context.Context, res *Result, cur *ObjectDiagram) (*Validation, error) {
	return explain.Validate(ctx, res, cur)
}

// PathStatisticsOf aggregates a discovered path set.
func PathStatisticsOf(paths []Path) PathStatistics { return explain.Statistics(paths) }

// AsBudgetError unwraps a structured analysis-budget error from err.
func AsBudgetError(err error) (*BudgetError, bool) { return depend.AsBudgetError(err) }

// --- Live-topology what-if engine (internal/whatif) ---

type (
	// WhatIfEngine owns a live topology and the registered service
	// generations analysed against it: transient failure impact, permanent
	// topology deltas with in-place kernel patching and targeted cache
	// invalidation, critical-component ranking, and freshness
	// revalidation.
	WhatIfEngine = whatif.Engine
	// WhatIfFailure names failed components and/or links for an impact
	// query.
	WhatIfFailure = whatif.Failure
	// WhatIfImpact is the per-service outcome of a transient failure
	// query.
	WhatIfImpact = whatif.ImpactReport
	// WhatIfDelta is one topology mutation (add/remove node/link).
	WhatIfDelta = whatif.Delta
	// WhatIfApplyReport is the outcome of a permanent topology change:
	// patch counts, invalidated cache keys, per-service deltas.
	WhatIfApplyReport = whatif.ApplyReport
	// WhatIfServiceDelta is one service's availability delta.
	WhatIfServiceDelta = whatif.ServiceDelta
	// CriticalComponent is one entry of the critical-component ranking
	// (single points of failure, fragile pairs, importance join).
	CriticalComponent = whatif.CriticalComponent
)

// Topology delta kinds for WhatIfDelta.Op.
const (
	WhatIfAddNode    = whatif.OpAddNode
	WhatIfRemoveNode = whatif.OpRemoveNode
	WhatIfAddLink    = whatif.OpAddLink
	WhatIfRemoveLink = whatif.OpRemoveLink
)

// NewWhatIfEngine builds a what-if engine over a live topology. c may be
// nil; when set, permanent changes and revalidation evict exactly the
// affected generations' cache-key families.
func NewWhatIfEngine(g *Graph, c *Cache) *WhatIfEngine { return whatif.New(g, c) }

// WhatIf answers the one-shot transient question — "if these components or
// links fail, what happens to the services?" — over a set of generated
// results, without mutating anything. It is a convenience wrapper over
// NewWhatIfEngine + Register + Impact; callers that mutate topology or need
// targeted cache invalidation use the engine directly.
func WhatIf(g *Graph, results map[string]*Result, model depend.AvailabilityModel, f WhatIfFailure) (*WhatIfImpact, error) {
	eng := whatif.New(g, nil)
	names := make([]string, 0, len(results))
	for name := range results {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if err := eng.Register(name, "", results[name], model); err != nil {
			return nil, err
		}
	}
	return eng.Impact(f)
}
