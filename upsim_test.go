package upsim

import (
	"bytes"
	"context"
	"strings"
	"testing"
)

// TestFacadeEndToEnd drives the full public workflow: build the case-study
// model, generate both published UPSIMs, analyse availability, round-trip
// the artefacts through their XML codecs and render DOT.
func TestFacadeEndToEnd(t *testing.T) {
	m, err := USIModel()
	if err != nil {
		t.Fatal(err)
	}
	svc, err := USIPrintingService(m)
	if err != nil {
		t.Fatal(err)
	}
	gen, err := NewGenerator(m, USIDiagramName)
	if err != nil {
		t.Fatal(err)
	}
	res, err := gen.Generate(svc, USITableIMapping(), "t1-to-p2", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(res.NodeNames()); got != 10 {
		t.Errorf("Figure 11 UPSIM size = %d, want 10", got)
	}
	rep, err := Analyze(res, ModelExact, 50000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Exact <= 0.9 || rep.Exact >= 1 {
		t.Errorf("availability = %v, implausible", rep.Exact)
	}

	// Model XML round trip keeps the generated UPSIM diagram.
	var buf bytes.Buffer
	if err := WriteModel(&buf, m); err != nil {
		t.Fatal(err)
	}
	m2, err := ReadModel(&buf)
	if err != nil {
		t.Fatal(err)
	}
	d2, ok := m2.Diagram("t1-to-p2")
	if !ok {
		t.Fatal("UPSIM diagram lost in round trip")
	}
	if d2.NumInstances() != res.UPSIM.NumInstances() {
		t.Errorf("round trip instances = %d, want %d", d2.NumInstances(), res.UPSIM.NumInstances())
	}

	// Mapping XML round trip.
	var mbuf bytes.Buffer
	if err := WriteMapping(&mbuf, USITableIMapping()); err != nil {
		t.Fatal(err)
	}
	mp2, err := ReadMapping(&mbuf)
	if err != nil {
		t.Fatal(err)
	}
	if mp2.Len() != 5 {
		t.Errorf("mapping round trip = %d pairs", mp2.Len())
	}

	// DOT rendering of the UPSIM.
	dot := ToDOT(res.Graph, "UPSIM t1→p2")
	if !strings.Contains(dot, "printS") || !strings.Contains(dot, "graph") {
		t.Errorf("DOT output malformed:\n%s", dot)
	}
}

func TestFacadeServiceConstruction(t *testing.T) {
	m := NewModel("demo")
	seq, err := NewSequentialService(m, "seq", "a", "b", "c")
	if err != nil {
		t.Fatal(err)
	}
	if got := seq.AtomicServices(); len(got) != 3 {
		t.Errorf("atomics = %v", got)
	}
	staged, err := NewStagedService(m, "staged", [][]string{{"x"}, {"y", "z"}})
	if err != nil {
		t.Fatal(err)
	}
	if got := staged.Stages(); len(got) != 2 || len(got[1]) != 2 {
		t.Errorf("stages = %v", got)
	}
	act, _ := m.Activity("seq")
	wrapped, err := ServiceFromActivity(act)
	if err != nil {
		t.Fatal(err)
	}
	if wrapped.Name() != "seq" {
		t.Errorf("wrapped = %q", wrapped.Name())
	}
}

func TestFacadeAvailability(t *testing.T) {
	a, err := Availability(3000, 24)
	if err != nil || a <= 0.99 || a >= 1 {
		t.Errorf("Availability = %v, %v", a, err)
	}
	f, err := AvailabilityFormula1(3000, 24)
	if err != nil || f != 0.992 {
		t.Errorf("Formula1 = %v, %v", f, err)
	}
}

func TestFacadeStructureOf(t *testing.T) {
	m, _ := USIModel()
	svc, _ := USIPrintingService(m)
	gen, _ := NewGenerator(m, USIDiagramName)
	res, err := gen.Generate(svc, USITableIMapping(), "u", Options{})
	if err != nil {
		t.Fatal(err)
	}
	st, avail, err := StructureOf(res, ModelExact)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.AtomicServices) != 5 {
		t.Errorf("atomics = %d", len(st.AtomicServices))
	}
	if len(avail) == 0 {
		t.Error("availability table empty")
	}
	exact, err := st.Exact(avail)
	if err != nil || exact <= 0 {
		t.Errorf("exact = %v, %v", exact, err)
	}
}

func TestFacadeBackup(t *testing.T) {
	m, _ := USIModel()
	svc, err := USIBackupService(m)
	if err != nil {
		t.Fatal(err)
	}
	gen, _ := NewGenerator(m, USIDiagramName)
	res, err := gen.Generate(svc, USIBackupMapping(), "backup-t7", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Graph.HasNode("backup") || !res.Graph.HasNode("t7") {
		t.Errorf("backup UPSIM nodes = %v", res.NodeNames())
	}
}

func TestFacadeDiffAndCount(t *testing.T) {
	m, _ := USIModel()
	svc, _ := USIPrintingService(m)
	gen, _ := NewGenerator(m, USIDiagramName)
	r1, err := gen.Generate(svc, USITableIMapping(), "da", Options{})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := gen.Generate(svc, USIT15P3Mapping(), "db", Options{})
	if err != nil {
		t.Fatal(err)
	}
	d, err := CompareResults(r1, r2)
	if err != nil {
		t.Fatal(err)
	}
	if d.Empty() {
		t.Fatal("perspective change must diff")
	}
	// t1's whole branch leaves, t15's enters.
	wantRemoved := map[string]bool{"t1": true, "e1": true, "d1": true, "p2": true, "e3": true}
	for _, n := range d.RemovedNodes {
		if !wantRemoved[n] {
			t.Errorf("unexpected removed node %s", n)
		}
	}
	n, _, err := CountPaths(gen.Graph(), "t1", "printS", PathOptions{})
	if err != nil || n != 2 {
		t.Errorf("CountPaths = %d, %v", n, err)
	}
}

func TestFacadePatternsAndRBD(t *testing.T) {
	m, _ := USIModel()
	svc, _ := USIPrintingService(m)
	gen, _ := NewGenerator(m, USIDiagramName)
	res, err := gen.Generate(svc, USITableIMapping(), "rbd-x", Options{})
	if err != nil {
		t.Fatal(err)
	}
	// VTCL patterns run against the generator's space.
	pats, err := ParsePatterns(`pattern servers(S, C) = {
		instanceOf(S, "metamodel.uml.InstanceSpecification");
		directed(S, "classifier", C);
		name(C, "Server");
	}`)
	if err != nil {
		t.Fatal(err)
	}
	ms, err := pats[0].Match(gen.Space(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 6 {
		t.Errorf("server instances = %d, want 6", len(ms))
	}
	// RBD model generation and evaluation.
	avail := map[string]float64{}
	for _, inst := range res.Source.Instances() {
		mtbf, _ := inst.Property("MTBF")
		mttr, _ := inst.Property("MTTR")
		a, err := Availability(mtbf.AsReal(), mttr.AsReal())
		if err != nil {
			t.Fatal(err)
		}
		avail[inst.Name()] = a
	}
	root, block, err := GenerateRBD(gen, "rbd-x", avail)
	if err != nil {
		t.Fatal(err)
	}
	a, err := block.Availability()
	if err != nil || a <= 0 || a > 1 {
		t.Errorf("RBD availability = %v, %v", a, err)
	}
	if out := RenderRBD(root); !strings.Contains(out, "[parallel]") {
		t.Errorf("rendering = %q", out)
	}
}

func TestFacadeWorkspaceAndTopologyModel(t *testing.T) {
	// Synthesize a campus model from a generated topology and persist it in
	// a workspace, then reload and generate.
	g, err := topologyCampus()
	if err != nil {
		t.Fatal(err)
	}
	m, err := BuildModelFromTopology("gen", g, TopologyParams{
		Classes: map[string]TopologyClassParams{"Client": {MTBF: 3000, MTTR: 24}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewSequentialService(m, "svc", "a", "b"); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	w, err := InitWorkspace(dir, m)
	if err != nil {
		t.Fatal(err)
	}
	mp := NewMapping()
	_ = mp.Add(Pair{AtomicService: "a", Requester: "t1", Provider: "srv1"})
	_ = mp.Add(Pair{AtomicService: "b", Requester: "srv1", Provider: "t1"})
	if err := w.SaveMapping("t1", mp); err != nil {
		t.Fatal(err)
	}
	w2, err := LoadWorkspace(dir)
	if err != nil {
		t.Fatal(err)
	}
	act, _ := w2.Model.Activity("svc")
	svc, err := ServiceFromActivity(act)
	if err != nil {
		t.Fatal(err)
	}
	mp2, ok := w2.Mapping("t1")
	if !ok {
		t.Fatal("mapping lost")
	}
	gen, err := NewGenerator(w2.Model, "infrastructure")
	if err != nil {
		t.Fatal(err)
	}
	res, err := gen.Generate(svc, mp2, "u", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Graph.HasNode("t1") || !res.Graph.HasNode("srv1") {
		t.Errorf("UPSIM = %v", res.NodeNames())
	}
}

func TestCloneModel(t *testing.T) {
	m, err := USIModel()
	if err != nil {
		t.Fatal(err)
	}
	clone, err := CloneModel(m)
	if err != nil {
		t.Fatal(err)
	}
	// Mutating the clone's diagram leaves the original untouched.
	d, _ := clone.Diagram(USIDiagramName)
	comp := clone.MustClass("Comp")
	if _, err := d.AddInstance("t99", comp); err != nil {
		t.Fatal(err)
	}
	orig, _ := m.Diagram(USIDiagramName)
	if _, ok := orig.Instance("t99"); ok {
		t.Error("clone mutation leaked into the original")
	}
	if clone.Name() != m.Name() || len(clone.Classes()) != len(m.Classes()) {
		t.Error("clone structurally differs")
	}
	// The clone still drives the pipeline and reproduces Figure 11.
	svc, err := USIPrintingService(clone)
	if err != nil {
		t.Fatal(err)
	}
	gen, err := NewGenerator(clone, USIDiagramName)
	if err != nil {
		t.Fatal(err)
	}
	res, err := gen.Generate(svc, USITableIMapping(), "u", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(res.NodeNames()); got != 10 {
		t.Errorf("clone UPSIM size = %d", got)
	}
}

// TestFacadeLint asserts the published case study stays free of
// error-severity findings — the same invariant CI enforces via
// `upsim lint -casestudy` — and exercises the facade's JSON round trip.
func TestFacadeLint(t *testing.T) {
	m, err := USIModel()
	if err != nil {
		t.Fatal(err)
	}
	svc, err := USIPrintingService(m)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Lint(m, USIDiagramName, svc, USITableIMapping())
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() {
		t.Errorf("USI case study has lint findings: %s", rep.Summary())
	}
	if rep.RulesRun < 10 {
		t.Errorf("rules run = %d, want >= 10", rep.RulesRun)
	}
	if err := rep.Err(); err != nil {
		t.Errorf("clean report Err() = %v", err)
	}
	if len(LintRules()) != rep.RulesRun {
		t.Errorf("LintRules() = %d rules, report says %d", len(LintRules()), rep.RulesRun)
	}

	var buf bytes.Buffer
	if err := rep.EncodeJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := DecodeLintReport(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.RulesRun != rep.RulesRun || !back.Clean() {
		t.Errorf("round trip changed the report: %+v", back)
	}

	// The backup service shares the mapping-coverage rules but has its own
	// mapping; it must lint clean too.
	backup, err := USIBackupService(m)
	if err != nil {
		t.Fatal(err)
	}
	rep, err = Lint(m, USIDiagramName, backup, USIBackupMapping())
	if err != nil {
		t.Fatal(err)
	}
	if rep.HasErrors() {
		t.Errorf("backup service lint: %s", rep.Summary())
	}

	// A deliberately broken mapping surfaces through AsLintError.
	mp := USITableIMapping()
	if err := mp.Remap("Request printing", "ghost", "printS"); err != nil {
		t.Fatal(err)
	}
	rep, err = Lint(m, USIDiagramName, svc, mp)
	if err != nil {
		t.Fatal(err)
	}
	lerr, ok := AsLintError(rep.Err())
	if !ok || lerr.Report.Errors == 0 {
		t.Errorf("AsLintError = %v, %v", lerr, ok)
	}
	if !strings.Contains(lerr.Error(), "mapping-dangling-ref") {
		t.Errorf("error text = %q", lerr.Error())
	}
}

// TestFacadeExplain drives the provenance & attribution surface through the
// public API: Explain, PathStatisticsOf, ValidateUPSIM and the structured
// budget error.
func TestFacadeExplain(t *testing.T) {
	m, err := USIModel()
	if err != nil {
		t.Fatal(err)
	}
	svc, err := USIPrintingService(m)
	if err != nil {
		t.Fatal(err)
	}
	gen, err := NewGenerator(m, USIDiagramName)
	if err != nil {
		t.Fatal(err)
	}
	res, err := gen.Generate(svc, USITableIMapping(), "facade-explain", Options{})
	if err != nil {
		t.Fatal(err)
	}

	rep, err := Explain(context.Background(), res, ExplainOptions{TopN: 3})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Stats.Count != res.TotalPaths || rep.Attribution == nil {
		t.Fatalf("explain report incomplete: %+v", rep)
	}
	if len(rep.Attribution.CutSets) != 3 || len(rep.Attribution.Components) != 3 {
		t.Errorf("TopN not applied: %d cuts, %d components",
			len(rep.Attribution.CutSets), len(rep.Attribution.Components))
	}
	var tree *DiscoveryTree = rep.Services[0].Tree
	if tree == nil || tree.Depth() != rep.Services[0].Stats.MaxLength+1 {
		t.Errorf("discovery tree inconsistent: %+v", tree)
	}
	st := PathStatisticsOf(res.Services[0].Paths)
	if st.Count != rep.Services[0].Stats.Count || st.MeanLength != rep.Services[0].Stats.MeanLength {
		t.Errorf("PathStatisticsOf = %+v, report stats %+v", st, rep.Services[0].Stats)
	}

	// Self-validation is fresh.
	cur, ok := m.Diagram(USIDiagramName)
	if !ok {
		t.Fatal("no infrastructure diagram")
	}
	v, err := ValidateUPSIM(context.Background(), res, cur)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Fresh {
		t.Errorf("self-validation stale: %+v", v.Issues)
	}

	// The structured budget error surfaces through the facade.
	_, err = Explain(context.Background(), res, ExplainOptions{CutLimit: 1})
	be, ok := AsBudgetError(err)
	if !ok || be.Limit != 1 || be.AtomicService == "" {
		t.Fatalf("AsBudgetError = %+v, %v (err %v)", be, ok, err)
	}
}
