package upsim_test

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// docsFiles are the markdown surfaces whose links must not rot: the README
// route table points into docs/API.md, the tutorial points back, and both
// point at DESIGN.md / EXPERIMENTS.md sections. CI runs this as part of the
// docs job; it is tier-1 like everything else.
func docsFiles(t *testing.T) []string {
	t.Helper()
	files := []string{"README.md", "DESIGN.md", "EXPERIMENTS.md"}
	docs, err := filepath.Glob("docs/*.md")
	if err != nil {
		t.Fatal(err)
	}
	return append(files, docs...)
}

var mdLink = regexp.MustCompile(`\]\(([^)\s]+)\)`)

// headingAnchors returns the GitHub-style anchor slugs of every markdown
// heading in src, skipping fenced code blocks (a `# comment` inside a sh
// block is not a heading).
func headingAnchors(src string) map[string]bool {
	anchors := map[string]bool{}
	inFence := false
	for _, line := range strings.Split(src, "\n") {
		if strings.HasPrefix(line, "```") {
			inFence = !inFence
			continue
		}
		if inFence || !strings.HasPrefix(line, "#") {
			continue
		}
		text := strings.TrimSpace(strings.TrimLeft(line, "#"))
		var b strings.Builder
		for _, r := range strings.ToLower(text) {
			switch {
			case r >= 'a' && r <= 'z' || r >= '0' && r <= '9':
				b.WriteRune(r)
			case r == ' ' || r == '-':
				b.WriteByte('-')
			}
		}
		anchors[b.String()] = true
	}
	return anchors
}

// TestDocsRelativeLinks checks every relative markdown link in the doc
// surfaces: the target file must exist, and when the link carries a
// #fragment, the target must contain a heading with that anchor.
func TestDocsRelativeLinks(t *testing.T) {
	cache := map[string]map[string]bool{}
	anchorsOf := func(path string) (map[string]bool, error) {
		if a, ok := cache[path]; ok {
			return a, nil
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		a := headingAnchors(string(data))
		cache[path] = a
		return a, nil
	}
	for _, file := range docsFiles(t) {
		data, err := os.ReadFile(file)
		if err != nil {
			t.Fatalf("%s: %v", file, err)
		}
		for _, m := range mdLink.FindAllStringSubmatch(string(data), -1) {
			target := m[1]
			if strings.Contains(target, "://") || strings.HasPrefix(target, "mailto:") {
				continue // external; availability is not this test's business
			}
			path, frag, _ := strings.Cut(target, "#")
			resolved := file
			if path != "" {
				resolved = filepath.Join(filepath.Dir(file), path)
				if _, err := os.Stat(resolved); err != nil {
					t.Errorf("%s: broken link %q: %v", file, target, err)
					continue
				}
			}
			if frag == "" || !strings.HasSuffix(resolved, ".md") {
				continue
			}
			anchors, err := anchorsOf(resolved)
			if err != nil {
				t.Errorf("%s: link %q: %v", file, target, err)
				continue
			}
			if !anchors[frag] {
				t.Errorf("%s: link %q: no heading with anchor #%s in %s", file, target, frag, resolved)
			}
		}
	}
}
