module upsim

go 1.22
