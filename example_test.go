package upsim_test

import (
	"fmt"
	"sync"

	"upsim"
)

// ExampleGenerator_Generate reproduces the paper's Figure 11: the UPSIM of
// the printing service for client t1 and printer p2.
func ExampleGenerator_Generate() {
	m, _ := upsim.USIModel()
	svc, _ := upsim.USIPrintingService(m)
	gen, _ := upsim.NewGenerator(m, upsim.USIDiagramName)
	res, _ := gen.Generate(svc, upsim.USITableIMapping(), "t1-to-p2", upsim.Options{})
	fmt.Println(res.NodeNames())
	// Output:
	// [c1 c2 d1 d2 d4 e1 e3 p2 printS t1]
}

// ExampleAllPaths reproduces the Section VI-G path listing for the first
// Table I pair.
func ExampleAllPaths() {
	m, _ := upsim.USIModel()
	gen, _ := upsim.NewGenerator(m, upsim.USIDiagramName)
	paths, _, _ := upsim.AllPaths(gen.Graph(), "t1", "printS", upsim.PathOptions{})
	for _, p := range paths {
		fmt.Println(p)
	}
	// Output:
	// t1—e1—d1—c1—c2—d4—printS
	// t1—e1—d1—c1—d4—printS
}

// ExampleCompile amortises path discovery over a fixed topology: the graph
// is lowered to its CSR form once, then enumerated repeatedly without
// per-call map allocations. The path sets are identical to AllPaths; the
// compiled kernel additionally reports how many expansions its
// reachability pass pruned.
func ExampleCompile() {
	m, _ := upsim.USIModel()
	gen, _ := upsim.NewGenerator(m, upsim.USIDiagramName)
	kernel := upsim.Compile(gen.Graph()) // or gen.Compiled()
	for _, pair := range [][2]string{{"t1", "printS"}, {"t15", "printS"}} {
		paths, stats, _ := kernel.AllPaths(pair[0], pair[1], upsim.PathOptions{MaxDepth: 6})
		fmt.Printf("%s→%s: %d paths, %d expansions pruned\n",
			pair[0], pair[1], len(paths), stats.Pruned)
	}
	// Output:
	// t1→printS: 2 paths, 10 expansions pruned
	// t15→printS: 2 paths, 11 expansions pruned
}

// ExampleMapping_Remap shows the dynamicity lever of Section V-A3: deriving
// the Figure 12 perspective is two component substitutions on a mapping
// clone — no model or service change.
func ExampleMapping_Remap() {
	base := upsim.USITableIMapping()
	moved := base.Clone()
	moved.RemapComponent("t1", "t15")
	moved.RemapComponent("p2", "p3")
	p, _ := moved.Pair("Request printing")
	fmt.Println(p)
	// Output:
	// Request printing: t15 -> printS
}

// ExampleAvailabilityFormula1 evaluates the paper's Formula 1 for the Comp
// client class of Figure 8.
func ExampleAvailabilityFormula1() {
	a, _ := upsim.AvailabilityFormula1(3000, 24)
	fmt.Printf("%.3f\n", a)
	// Output:
	// 0.992
}

// ExampleNewCache attaches a content-addressed result cache to a generator:
// the second identical request skips the pipeline (Steps 6–8) entirely and
// returns the shared Result.
func ExampleNewCache() {
	m, _ := upsim.USIModel()
	svc, _ := upsim.USIPrintingService(m)
	gen, _ := upsim.NewGenerator(m, upsim.USIDiagramName)
	gen.WithCache(upsim.NewCache(64))

	cold, _ := gen.Generate(svc, upsim.USITableIMapping(), "t1-to-p2", upsim.Options{})
	warm, _ := gen.Generate(svc, upsim.USITableIMapping(), "t1-to-p2", upsim.Options{})
	fmt.Println("shared result:", warm == cold)
	fmt.Println(gen.Cache().Stats())
	// Output:
	// shared result: true
	// hits=1 misses=1 shared=0 evictions=0 invalidations=0 entries=1/64
}

// ExampleGenerator_WithCache fans concurrent identical requests through one
// cached generator: singleflight guarantees the pipeline computes exactly
// once and every caller shares the same Result.
func ExampleGenerator_WithCache() {
	m, _ := upsim.USIModel()
	svc, _ := upsim.USIPrintingService(m)
	gen, _ := upsim.NewGenerator(m, upsim.USIDiagramName)
	gen.WithCache(upsim.NewCache(64))

	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, _ = gen.Generate(svc, upsim.USITableIMapping(), "batch", upsim.Options{})
		}()
	}
	wg.Wait()
	s := gen.Cache().Stats()
	// Hits vs shared depends on timing; their sum does not.
	fmt.Println("computed:", s.Misses, "reused:", s.Hits+s.Shared)
	// Output:
	// computed: 1 reused: 7
}

// ExampleCacheStats reads the counters of a cache that served a warm and a
// cold request mix.
func ExampleCacheStats() {
	m, _ := upsim.USIModel()
	svc, _ := upsim.USIPrintingService(m)
	gen, _ := upsim.NewGenerator(m, upsim.USIDiagramName)
	c := upsim.NewCache(64)
	gen.WithCache(c)

	gen.Generate(svc, upsim.USITableIMapping(), "a", upsim.Options{}) // miss
	gen.Generate(svc, upsim.USITableIMapping(), "a", upsim.Options{}) // hit
	gen.Generate(svc, upsim.USITableIMapping(), "b", upsim.Options{}) // miss

	var s upsim.CacheStats = c.Stats()
	fmt.Println("hits:", s.Hits)
	fmt.Println("misses:", s.Misses)
	fmt.Println("entries:", s.Entries)
	// Output:
	// hits: 1
	// misses: 2
	// entries: 2
}

// ExampleWhatIf asks the one-shot transient question: what happens to the
// printing service if the print server fails?
func ExampleWhatIf() {
	m, _ := upsim.USIModel()
	svc, _ := upsim.USIPrintingService(m)
	gen, _ := upsim.NewGenerator(m, upsim.USIDiagramName)
	res, _ := gen.Generate(svc, upsim.USITableIMapping(), "printing", upsim.Options{})

	impact, _ := upsim.WhatIf(gen.Graph(), map[string]*upsim.Result{"printing": res},
		upsim.ModelExact, upsim.WhatIfFailure{Components: []string{"printS"}})

	d := impact.Services[0]
	fmt.Println("affected:", d.Affected)
	fmt.Println("availability with printS down:", d.Failed)
	// Output:
	// affected: true
	// availability with printS down: 0
}

// ExampleNewWhatIfEngine applies a permanent topology change: the engine
// patches the compiled kernels in place and reports the new availability.
func ExampleNewWhatIfEngine() {
	m, _ := upsim.USIModel()
	svc, _ := upsim.USIPrintingService(m)
	gen, _ := upsim.NewGenerator(m, upsim.USIDiagramName)
	res, _ := gen.Generate(svc, upsim.USITableIMapping(), "printing", upsim.Options{})

	eng := upsim.NewWhatIfEngine(gen.Graph(), nil)
	_ = eng.Register("printing", "", res, upsim.ModelExact)

	rep, _ := eng.Apply(upsim.WhatIfDelta{Op: upsim.WhatIfRemoveNode, Node: "p2"})
	d := rep.Services[0]
	fmt.Println("dead:", d.Dead)
	fmt.Println("patch ops:", rep.PatchOps > 0)
	// Output:
	// dead: true
	// patch ops: true
}
