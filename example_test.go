package upsim_test

import (
	"fmt"

	"upsim"
)

// ExampleGenerator_Generate reproduces the paper's Figure 11: the UPSIM of
// the printing service for client t1 and printer p2.
func ExampleGenerator_Generate() {
	m, _ := upsim.USIModel()
	svc, _ := upsim.USIPrintingService(m)
	gen, _ := upsim.NewGenerator(m, upsim.USIDiagramName)
	res, _ := gen.Generate(svc, upsim.USITableIMapping(), "t1-to-p2", upsim.Options{})
	fmt.Println(res.NodeNames())
	// Output:
	// [c1 c2 d1 d2 d4 e1 e3 p2 printS t1]
}

// ExampleAllPaths reproduces the Section VI-G path listing for the first
// Table I pair.
func ExampleAllPaths() {
	m, _ := upsim.USIModel()
	gen, _ := upsim.NewGenerator(m, upsim.USIDiagramName)
	paths, _, _ := upsim.AllPaths(gen.Graph(), "t1", "printS", upsim.PathOptions{})
	for _, p := range paths {
		fmt.Println(p)
	}
	// Output:
	// t1—e1—d1—c1—c2—d4—printS
	// t1—e1—d1—c1—d4—printS
}

// ExampleMapping_Remap shows the dynamicity lever of Section V-A3: deriving
// the Figure 12 perspective is two component substitutions on a mapping
// clone — no model or service change.
func ExampleMapping_Remap() {
	base := upsim.USITableIMapping()
	moved := base.Clone()
	moved.RemapComponent("t1", "t15")
	moved.RemapComponent("p2", "p3")
	p, _ := moved.Pair("Request printing")
	fmt.Println(p)
	// Output:
	// Request printing: t15 -> printS
}

// ExampleAvailabilityFormula1 evaluates the paper's Formula 1 for the Comp
// client class of Figure 8.
func ExampleAvailabilityFormula1() {
	a, _ := upsim.AvailabilityFormula1(3000, 24)
	fmt.Printf("%.3f\n", a)
	// Output:
	// 0.992
}
