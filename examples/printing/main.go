// Printing reproduces the paper's Section VI case study end to end: the USI
// campus network, the printing service of Figure 10, the Table I mapping,
// and the generated UPSIMs of Figures 11 and 12, including the Section VI-G
// path listing and the availability analysis of Section VII.
//
// Run with:
//
//	go run ./examples/printing
package main

import (
	"fmt"
	"log"

	"upsim"
)

func main() {
	if err := run(); err != nil {
		log.SetFlags(0)
		log.Fatal(err)
	}
}

func run() error {
	m, err := upsim.USIModel()
	if err != nil {
		return err
	}
	svc, err := upsim.USIPrintingService(m)
	if err != nil {
		return err
	}
	gen, err := upsim.NewGenerator(m, upsim.USIDiagramName)
	if err != nil {
		return err
	}

	// Pre-flight lint over model, service and mapping (internal/lint): the
	// case study must come back free of error-severity findings.
	lintRep, err := upsim.Lint(m, upsim.USIDiagramName, svc, upsim.USITableIMapping())
	if err != nil {
		return err
	}
	fmt.Printf("pre-flight lint: %s\n\n", lintRep.Summary())
	if err := lintRep.Err(); err != nil {
		return err
	}

	fmt.Println("== USI infrastructure (Figures 5/9) ==")
	fmt.Printf("%d components, %d links\n\n", gen.Graph().NumNodes(), gen.Graph().NumEdges())

	fmt.Println("== Printing service (Figure 10) ==")
	for i, stage := range svc.Stages() {
		fmt.Printf("  %d. %v\n", i+1, stage)
	}

	fmt.Println("\n== Table I mapping (requester t1, printer p2, server printS) ==")
	for _, p := range upsim.USITableIMapping().Pairs() {
		fmt.Printf("  %-20s RQ=%-8s PR=%s\n", p.AtomicService, p.Requester, p.Provider)
	}

	res, err := gen.Generate(svc, upsim.USITableIMapping(), "upsim-t1-p2", upsim.Options{})
	if err != nil {
		return err
	}
	fmt.Println("\n== Paths for the first mapping pair (Section VI-G) ==")
	paths, _ := res.PathsFor("Request printing")
	for _, p := range paths {
		fmt.Println("  ", p)
	}

	fmt.Println("\n== UPSIM for t1 → p2 (Figure 11) ==")
	for _, inst := range res.UPSIM.Instances() {
		fmt.Println("  ", inst.Signature())
	}

	res2, err := gen.Generate(svc, upsim.USIT15P3Mapping(), "upsim-t15-p3", upsim.Options{})
	if err != nil {
		return err
	}
	fmt.Println("\n== UPSIM for t15 → p3 (Figure 12, mapping-only change) ==")
	for _, inst := range res2.UPSIM.Instances() {
		fmt.Println("  ", inst.Signature())
	}

	fmt.Println("\n== User-perceived availability (Section VII) ==")
	for name, r := range map[string]*upsim.Result{"t1→p2": res, "t15→p3": res2} {
		rep, err := upsim.Analyze(r, upsim.ModelExact, 200000, 42)
		if err != nil {
			return err
		}
		fmt.Printf("  %-8s exact=%.8f  rbd=%.8f  mc=%.6f±%.6f  downtime/yr=%.1fh\n",
			name, rep.Exact, rep.RBDApprox, rep.MonteCarlo, rep.MCStdErr, rep.DowntimePerYearHours)
	}

	fmt.Println("\nGraphviz DOT of the Figure 11 UPSIM:")
	fmt.Println(upsim.ToDOT(res.Graph, "UPSIM t1-p2"))
	return nil
}
