// Mobility demonstrates the dynamicity argument of Section V-A3: when a
// user moves between clients of the network, only the service mapping
// changes — the service description and the infrastructure model stay
// untouched — and the UPSIM is regenerated in milliseconds for each new
// position. The example walks the printing user through every client of the
// USI campus and reports how the perceived infrastructure and availability
// change with position.
//
// Run with:
//
//	go run ./examples/mobility
package main

import (
	"fmt"
	"log"
	"sort"

	"upsim"
)

func main() {
	if err := run(); err != nil {
		log.SetFlags(0)
		log.Fatal(err)
	}
}

func run() error {
	m, err := upsim.USIModel()
	if err != nil {
		return err
	}
	svc, err := upsim.USIPrintingService(m)
	if err != nil {
		return err
	}
	gen, err := upsim.NewGenerator(m, upsim.USIDiagramName)
	if err != nil {
		return err
	}

	// The user always prints on p2 through printS; only their client
	// changes. Deriving each perspective is a single RemapComponent call on
	// a clone of the base mapping.
	base := upsim.USITableIMapping()
	clients := []string{"t1", "t2", "t3", "t6", "t7", "t8", "t10", "t11", "t12", "t13", "t14", "t15"}

	type row struct {
		client string
		nodes  int
		paths  int
		avail  float64
	}
	var rows []row
	for _, client := range clients {
		mp := base.Clone()
		if client != "t1" {
			if _, err := mp.RemapComponent("t1", client); err != nil {
				return err
			}
		}
		// Each remapped perspective passes the lint gate before generation:
		// a typo'd client name would surface as a mapping-dangling-ref
		// report instead of a failed path discovery.
		res, err := gen.Generate(svc, mp, "upsim-"+client, upsim.Options{Lint: upsim.LintFail})
		if err != nil {
			return err
		}
		rep, err := upsim.Analyze(res, upsim.ModelExact, 0+1, 1) // exact only; 1 MC sample
		if err != nil {
			return err
		}
		rows = append(rows, row{
			client: client,
			nodes:  res.Graph.NumNodes(),
			paths:  res.TotalPaths,
			avail:  rep.Exact,
		})
	}

	sort.Slice(rows, func(i, j int) bool { return rows[i].avail > rows[j].avail })
	fmt.Println("printing service (printer p2, server printS), perceived per client position:")
	fmt.Printf("%-8s %6s %6s %12s\n", "client", "nodes", "paths", "availability")
	for _, r := range rows {
		fmt.Printf("%-8s %6d %6d %12.8f\n", r.client, r.nodes, r.paths, r.avail)
	}
	fmt.Println("\nNote: clients on the printer's own edge switch (t10–t12 on e3) or")
	fmt.Println("distribution branch traverse fewer components and perceive a slightly")
	fmt.Println("higher availability than clients behind the other core.")
	return nil
}
