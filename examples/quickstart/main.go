// Quickstart: build a five-node network from scratch, describe a two-step
// service, map it to a (requester, provider) pair and generate the
// user-perceived service infrastructure model (UPSIM).
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"

	"upsim"
	"upsim/internal/uml"
)

func main() {
	if err := run(); err != nil {
		log.SetFlags(0)
		log.Fatal(err)
	}
}

func run() error {
	// 1. Describe the component types. The availability profile gives every
	// device and connector the MTBF/MTTR attributes later analysis needs.
	m := upsim.NewModel("quickstart")
	profile := upsim.NewProfile("availability")
	component, err := profile.DefineAbstractStereotype("Component", uml.MetaclassNone)
	if err != nil {
		return err
	}
	if err := component.AddAttribute("MTBF", uml.KindReal); err != nil {
		return err
	}
	if err := component.AddAttribute("MTTR", uml.KindReal); err != nil {
		return err
	}
	device, err := profile.DefineSubStereotype("Device", uml.MetaclassClass, component)
	if err != nil {
		return err
	}
	connector, err := profile.DefineSubStereotype("Connector", uml.MetaclassAssociation, component)
	if err != nil {
		return err
	}
	if err := m.AddProfile(profile); err != nil {
		return err
	}

	class := func(name string, mtbf, mttr float64) *upsim.Class {
		c, err := m.AddClass(name)
		if err != nil {
			log.Fatal(err)
		}
		app, err := c.Apply(device)
		if err != nil {
			log.Fatal(err)
		}
		_ = app.Set("MTBF", uml.RealValue(mtbf))
		_ = app.Set("MTTR", uml.RealValue(mttr))
		return c
	}
	laptop := class("Laptop", 5000, 12)
	sw := class("Switch", 150000, 0.5)
	server := class("Server", 60000, 0.2)

	assoc := func(name string, a, b *upsim.Class) *upsim.Association {
		as, err := m.AddAssociation(name, a, b)
		if err != nil {
			log.Fatal(err)
		}
		app, err := as.Apply(connector)
		if err != nil {
			log.Fatal(err)
		}
		_ = app.Set("MTBF", uml.RealValue(1e6))
		_ = app.Set("MTTR", uml.RealValue(0.1))
		return as
	}
	ls := assoc("Laptop-Switch", laptop, sw)
	ss := assoc("Switch-Switch", sw, sw)
	sv := assoc("Switch-Server", sw, server)

	// 2. Deploy the topology: a laptop behind a switch, two redundant core
	// switches, a server.
	d := m.NewObjectDiagram("office")
	for _, spec := range []struct {
		name string
		cls  *upsim.Class
	}{
		{"alice", laptop}, {"access", sw}, {"coreA", sw}, {"coreB", sw}, {"files", server},
	} {
		if _, err := d.AddInstance(spec.name, spec.cls); err != nil {
			return err
		}
	}
	for _, l := range []struct {
		a, b string
		as   *upsim.Association
	}{
		{"alice", "access", ls},
		{"access", "coreA", ss}, {"access", "coreB", ss},
		{"coreA", "files", sv}, {"coreB", "files", sv},
	} {
		if _, err := d.ConnectByName(l.a, l.b, l.as); err != nil {
			return err
		}
	}

	// 3. Describe the service and map it: "open" then "save", both between
	// alice and the file server.
	svc, err := upsim.NewSequentialService(m, "file-share", "open", "save")
	if err != nil {
		return err
	}
	mp := upsim.NewMapping()
	if err := mp.Add(upsim.Pair{AtomicService: "open", Requester: "alice", Provider: "files"}); err != nil {
		return err
	}
	if err := mp.Add(upsim.Pair{AtomicService: "save", Requester: "alice", Provider: "files"}); err != nil {
		return err
	}

	// 4. Pre-flight lint: every cross-artifact defect (dangling mapping
	// references, missing MTBF/MTTR, disconnected pairs, ...) at once,
	// before any pipeline step runs.
	lintRep, err := upsim.Lint(m, "office", svc, mp)
	if err != nil {
		return err
	}
	fmt.Println("pre-flight lint:", lintRep.Summary())
	if err := lintRep.Err(); err != nil {
		return err
	}

	// 5. Generate the UPSIM and analyse alice's perceived availability.
	gen, err := upsim.NewGenerator(m, "office")
	if err != nil {
		return err
	}
	res, err := gen.Generate(svc, mp, "alice-files", upsim.Options{})
	if err != nil {
		return err
	}
	fmt.Println("UPSIM components:", res.NodeNames())
	for _, sp := range res.Services {
		fmt.Printf("paths for %q (%s -> %s):\n", sp.AtomicService, sp.Requester, sp.Provider)
		for _, p := range sp.Paths {
			fmt.Println("  ", p)
		}
	}
	rep, err := upsim.Analyze(res, upsim.ModelExact, 100000, 1)
	if err != nil {
		return err
	}
	fmt.Printf("user-perceived availability: %.6f (≈ %.1f h downtime/year)\n",
		rep.Exact, rep.DowntimePerYearHours)

	// 6. The UPSIM is a regular object diagram: export the whole model.
	fmt.Println("\nModel XML written to quickstart-model.xml")
	f, err := os.Create("quickstart-model.xml")
	if err != nil {
		return err
	}
	defer f.Close()
	return upsim.WriteModel(f, m)
}
