// Whatif turns the paper's conclusion — the UPSIM gives "a quick overview
// on which ICT components can be the cause" of a service problem — into a
// quantitative diagnosis workflow: for the printing user t1→p2 it lists the
// minimal cut sets of the perceived infrastructure (the smallest component
// groups whose joint failure takes the service down for this user), ranks
// components by Fussell–Vesely importance, and answers maintenance what-if
// questions ("what does this user perceive while c1 is down?").
//
// Run with:
//
//	go run ./examples/whatif
package main

import (
	"fmt"
	"log"
	"sort"
	"strings"

	"upsim"
)

func main() {
	if err := run(); err != nil {
		log.SetFlags(0)
		log.Fatal(err)
	}
}

func run() error {
	m, err := upsim.USIModel()
	if err != nil {
		return err
	}
	svc, err := upsim.USIPrintingService(m)
	if err != nil {
		return err
	}
	gen, err := upsim.NewGenerator(m, upsim.USIDiagramName)
	if err != nil {
		return err
	}
	// LintWarn keeps the what-if loop running on imperfect models but logs
	// every finding through the structured logger.
	res, err := gen.Generate(svc, upsim.USITableIMapping(), "upsim-t1-p2",
		upsim.Options{Lint: upsim.LintWarn})
	if err != nil {
		return err
	}
	st, avail, err := upsim.StructureOf(res, upsim.ModelExact)
	if err != nil {
		return err
	}
	base, err := st.Exact(avail)
	if err != nil {
		return err
	}
	fmt.Printf("printing service, user t1 → printer p2: availability %.8f\n\n", base)

	// Minimal cut sets: which component groups take the service down.
	cuts, err := st.MinimalCutSets(0)
	if err != nil {
		return err
	}
	singles, doubles := 0, 0
	fmt.Println("== Minimal cut sets (single points of failure first) ==")
	for _, k := range cuts {
		switch len(k) {
		case 1:
			singles++
			fmt.Printf("  SPOF: %s\n", k[0])
		case 2:
			doubles++
		}
	}
	fmt.Printf("  plus %d two-component cut sets; %d cut sets total\n\n", doubles, len(cuts))

	// Esary–Proschan bounds vs the exact value.
	bounds, err := st.EsaryProschan(avail, 0)
	if err != nil {
		return err
	}
	fmt.Printf("== Esary–Proschan bounds ==\n  %.10f ≤ %.10f ≤ %.10f\n\n",
		bounds.Lower, base, bounds.Upper)

	// Fussell–Vesely importance: who is implicated in the outages.
	type row struct {
		comp string
		fv   float64
	}
	var rows []row
	for _, c := range st.Components() {
		fv, err := st.FussellVesely(avail, c)
		if err != nil {
			return err
		}
		rows = append(rows, row{comp: c, fv: fv})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].fv > rows[j].fv })
	fmt.Println("== Fussell–Vesely importance (share of outages involving the component) ==")
	for i, r := range rows {
		if i >= 8 {
			break
		}
		bar := strings.Repeat("#", int(r.fv*40+0.5))
		fmt.Printf("  %-22s %7.4f %s\n", r.comp, r.fv, bar)
	}

	// Maintenance what-ifs.
	fmt.Println("\n== What-if: perceived availability under forced component states ==")
	for _, scenario := range []struct {
		label  string
		forced map[string]bool
	}{
		{"core c1 down (maintenance)", map[string]bool{"c1": false}},
		{"core c2 down (maintenance)", map[string]bool{"c2": false}},
		{"client t1 replaced by perfect hardware", map[string]bool{"t1": true}},
		{"printer p2 replaced by perfect hardware", map[string]bool{"p2": true}},
		{"cores c1 and c2 made perfect", map[string]bool{"c1": true, "c2": true}},
	} {
		a, err := st.WhatIf(avail, scenario.forced)
		if err != nil {
			return err
		}
		fmt.Printf("  %-42s %.8f (Δ%+.2e)\n", scenario.label, a, a-base)
	}
	fmt.Println("\nReading: despite the dual-homed print-server switch, BOTH cores are")
	fmt.Println("single points of failure for this pair (t1's branch rides on c1, the")
	fmt.Println("printer's on c2) — planned core maintenance is user-visible downtime.")
	fmt.Println("Yet hardening cores barely moves perceived availability: the client")
	fmt.Println("machine dominates. The user-perceived view shows both facts at once.")
	return nil
}
