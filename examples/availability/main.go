// Availability digs into the Section VII analysis for one user perspective:
// it prints the per-component availability table (Formula 1 vs the exact
// renewal formula), compares the exact structure-function evaluation with
// the naive RBD and fault-tree approximations and a Monte-Carlo estimate,
// and ranks the UPSIM components by Birnbaum importance — the quantitative
// version of the paper's "quick overview on which ICT components can be the
// cause" of a service problem.
//
// Run with:
//
//	go run ./examples/availability
package main

import (
	"fmt"
	"log"
	"sort"

	"upsim"
)

func main() {
	if err := run(); err != nil {
		log.SetFlags(0)
		log.Fatal(err)
	}
}

func run() error {
	m, err := upsim.USIModel()
	if err != nil {
		return err
	}
	svc, err := upsim.USIPrintingService(m)
	if err != nil {
		return err
	}
	gen, err := upsim.NewGenerator(m, upsim.USIDiagramName)
	if err != nil {
		return err
	}
	// Lint: upsim.LintFail runs the static-analysis registry before Step 6
	// and aborts with the full report if an error-severity finding exists —
	// e.g. a component whose class lacks the MTBF the table below reads.
	res, err := gen.Generate(svc, upsim.USITableIMapping(), "upsim-t1-p2",
		upsim.Options{Lint: upsim.LintFail})
	if err != nil {
		return err
	}

	// Per-component availability: Formula 1 vs exact (devices only; links
	// share one attribute set in the case study).
	fmt.Println("== Component availability (devices of the t1→p2 UPSIM) ==")
	fmt.Printf("%-10s %-10s %12s %12s %14s %12s\n", "component", "class", "MTBF[h]", "MTTR[h]", "A=1-MTTR/MTBF", "A exact")
	for _, inst := range res.UPSIM.Instances() {
		mtbf, _ := inst.Property("MTBF")
		mttr, _ := inst.Property("MTTR")
		f1, err := upsim.AvailabilityFormula1(mtbf.AsReal(), mttr.AsReal())
		if err != nil {
			return err
		}
		exact, err := upsim.Availability(mtbf.AsReal(), mttr.AsReal())
		if err != nil {
			return err
		}
		fmt.Printf("%-10s %-10s %12.0f %12.1f %14.8f %12.8f\n",
			inst.Name(), inst.Classifier().Name(), mtbf.AsReal(), mttr.AsReal(), f1, exact)
	}

	// Service-level evaluation.
	st, avail, err := upsim.StructureOf(res, upsim.ModelExact)
	if err != nil {
		return err
	}
	exact, err := st.Exact(avail)
	if err != nil {
		return err
	}
	rbd, err := st.RBDApprox(avail)
	if err != nil {
		return err
	}
	ft, err := st.ToFaultTree(avail)
	if err != nil {
		return err
	}
	topQ, err := ft.Probability()
	if err != nil {
		return err
	}
	mc, se, err := st.MonteCarlo(avail, 500000, 7)
	if err != nil {
		return err
	}
	fmt.Println("\n== Printing service, user t1 → printer p2 ==")
	fmt.Printf("exact (structure function):    %.10f\n", exact)
	fmt.Printf("naive RBD (ignores sharing):   %.10f  (Δ=%+.3e)\n", rbd, rbd-exact)
	fmt.Printf("fault tree (1 − P(top)):       %.10f\n", 1-topQ)
	fmt.Printf("Monte Carlo (500k samples):    %.6f ± %.6f\n", mc, se)
	fmt.Printf("expected downtime:             %.1f hours/year\n", (1-exact)*365*24)

	// Birnbaum importance ranking.
	type imp struct {
		comp string
		b    float64
	}
	var imps []imp
	for _, c := range st.Components() {
		b, err := st.Birnbaum(avail, c)
		if err != nil {
			return err
		}
		imps = append(imps, imp{comp: c, b: b})
	}
	sort.Slice(imps, func(i, j int) bool { return imps[i].b > imps[j].b })
	fmt.Println("\n== Birnbaum importance (where a failure hurts this user most) ==")
	for i, x := range imps {
		if i >= 10 {
			break
		}
		fmt.Printf("%2d. %-22s %.8f\n", i+1, x.comp, x.b)
	}
	return nil
}
