// Command upsim is the command-line front end of the UPSIM library: it
// loads UML model files and Figure-3 mapping files, inspects topologies,
// discovers requester→provider paths, generates user-perceived service
// infrastructure models and runs availability analysis.
//
// Usage:
//
//	upsim casestudy  -model usi.xml -mapping table1.xml
//	upsim inventory  -model usi.xml -diagram infrastructure
//	upsim paths      -model usi.xml -diagram infrastructure -from t1 -to printS \
//	                 [-k 5] [-cost hops|throughput] [-trace]
//	upsim generate   -model usi.xml -diagram infrastructure -service printing \
//	                 -mapping table1.xml -name upsim-t1-p2 [-dot out.dot] [-out model2.xml] [-trace]
//	upsim avail      -model usi.xml -diagram infrastructure -service printing \
//	                 -mapping table1.xml [-formula1] [-mc 200000] [-trace]
//	upsim explain    -model usi.xml -diagram infrastructure -service printing \
//	                 -mapping table1.xml [-top 5] [-formula1] [-legacy] [-cutlimit N] [-json] [-trace]
//	upsim explain    -casestudy
//	upsim dot        -model usi.xml -diagram infrastructure
//	upsim lint       -model usi.xml -diagram infrastructure -service printing \
//	                 -mapping table1.xml [-json]
//	upsim lint       -casestudy
//	upsim batch      -req requests.json [-workers 4] [-cache-size 128] [-out resp.json]
//	upsim whatif     -model usi.xml -diagram infrastructure -service printing \
//	                 -mapping table1.xml [-fail p2,d4] [-fail-link t1--e1] [-top 10] [-json] [-trace]
//	upsim whatif     -casestudy -fail printS
//
// The -trace flag on paths, generate, avail and explain prints the pipeline
// span tree (one span per methodology step, with wall times and attributes)
// after the normal output; for explain the tree includes the
// explain.report/explain.paths/explain.attribution spans.
//
// The explain subcommand renders the provenance & attribution report: where
// every availability number comes from — per-service path statistics, the
// discovery tree rooted at the requester, the top minimal cut sets by
// unavailability contribution, component Birnbaum / Fussell–Vesely
// importance rankings and class-level sensitivities. The numbers are
// bit-identical to POST /api/v1/explain for the same inputs.
//
// The lint subcommand runs every built-in static-analysis rule over the
// model artifacts and exits non-zero when any error-severity finding exists,
// so it slots directly into CI pipelines; -json emits the machine-readable
// report.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"upsim"
	"upsim/internal/topology"
	"upsim/internal/uml"
	"upsim/internal/vtcl"
	"upsim/internal/workspace"
)

// traceSpan opens a root span when -trace is set and returns a print func
// the subcommand defers: it ends the span and writes the rendered tree with
// per-stage wall times. Without -trace both returns are cheap no-ops.
func traceSpan(enabled bool, name string) (context.Context, func()) {
	ctx := context.Background()
	if !enabled {
		return ctx, func() {}
	}
	ctx, span := upsim.StartSpan(ctx, name)
	return ctx, func() {
		span.End()
		fmt.Print(span.Render())
	}
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "upsim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) == 0 {
		usage()
		return fmt.Errorf("missing subcommand")
	}
	switch args[0] {
	case "casestudy":
		return cmdCaseStudy(args[1:])
	case "inventory":
		return cmdInventory(args[1:])
	case "paths":
		return cmdPaths(args[1:])
	case "generate":
		return cmdGenerate(args[1:])
	case "avail":
		return cmdAvail(args[1:])
	case "explain":
		return cmdExplain(args[1:])
	case "dot":
		return cmdDot(args[1:])
	case "lint":
		return cmdLint(args[1:])
	case "query":
		return cmdQuery(args[1:])
	case "rbd":
		return cmdRBD(args[1:])
	case "project":
		return cmdProject(args[1:])
	case "batch":
		return cmdBatch(args[1:])
	case "whatif":
		return cmdWhatIf(args[1:])
	case "help", "-h", "--help":
		usage()
		return nil
	}
	usage()
	return fmt.Errorf("unknown subcommand %q", args[0])
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: upsim <command> [flags]

commands:
  casestudy   write the built-in USI case-study model and Table I mapping
  inventory   summarise a model file (classes, diagrams, services)
  paths       enumerate all simple paths between two components (-k for the k cheapest)
  generate    generate a UPSIM for a service, mapping and perspective
  avail       user-perceived availability analysis for a service mapping
  explain     provenance & attribution report: paths, discovery trees, cut sets, importances
  dot         render an object diagram as Graphviz DOT
  lint        static-analysis of model, service and mapping (non-zero exit on errors)
  query       run a VTCL-style pattern against the imported model space
  rbd         generate and render the reliability block diagram of a UPSIM
  project     init or inspect a workspace directory (model + mappings + patterns)
  batch       execute a JSON batch request file through the shared generation cache
  whatif      failure impact and critical-component ranking on the live topology

run 'upsim <command> -h' for per-command flags`)
}

func loadModel(path string) (*upsim.Model, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return upsim.ReadModel(f)
}

func loadMapping(path string) (*upsim.Mapping, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return upsim.ReadMapping(f)
}

func cmdCaseStudy(args []string) error {
	fs := flag.NewFlagSet("casestudy", flag.ContinueOnError)
	modelOut := fs.String("model", "usi.xml", "output path for the USI model")
	mappingOut := fs.String("mapping", "table1.xml", "output path for the Table I mapping")
	if err := fs.Parse(args); err != nil {
		return err
	}
	m, err := upsim.USIModel()
	if err != nil {
		return err
	}
	if _, err := upsim.USIPrintingService(m); err != nil {
		return err
	}
	if _, err := upsim.USIBackupService(m); err != nil {
		return err
	}
	mf, err := os.Create(*modelOut)
	if err != nil {
		return err
	}
	defer mf.Close()
	if err := upsim.WriteModel(mf, m); err != nil {
		return err
	}
	pf, err := os.Create(*mappingOut)
	if err != nil {
		return err
	}
	defer pf.Close()
	if err := upsim.WriteMapping(pf, upsim.USITableIMapping()); err != nil {
		return err
	}
	fmt.Printf("wrote %s (model with services %q, %q) and %s (Table I mapping)\n",
		*modelOut, "printing", "backup", *mappingOut)
	return nil
}

func cmdInventory(args []string) error {
	fs := flag.NewFlagSet("inventory", flag.ContinueOnError)
	modelPath := fs.String("model", "", "model XML file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *modelPath == "" {
		return fmt.Errorf("inventory: -model is required")
	}
	m, err := loadModel(*modelPath)
	if err != nil {
		return err
	}
	fmt.Printf("model %q\n", m.Name())
	fmt.Printf("profiles: %d\n", len(m.Profiles()))
	for _, p := range m.Profiles() {
		fmt.Printf("  %s (%d stereotypes)\n", p.Name(), len(p.Stereotypes()))
	}
	fmt.Printf("classes: %d\n", len(m.Classes()))
	for _, c := range m.Classes() {
		mtbf, _ := c.Property("MTBF")
		mttr, _ := c.Property("MTTR")
		fmt.Printf("  %-30s MTBF=%-10s MTTR=%s\n", c.String(), mtbf.String(), mttr.String())
	}
	fmt.Printf("associations: %d\n", len(m.Associations()))
	fmt.Printf("object diagrams: %d\n", len(m.Diagrams()))
	for _, d := range m.Diagrams() {
		fmt.Printf("  %-30s %d instances, %d links\n", d.Name(), d.NumInstances(), d.NumLinks())
	}
	fmt.Printf("activities: %d\n", len(m.Activities()))
	for _, a := range m.Activities() {
		fmt.Printf("  %-30s actions: %v\n", a.Name(), a.ActionNames())
	}
	return nil
}

func cmdPaths(args []string) error {
	fs := flag.NewFlagSet("paths", flag.ContinueOnError)
	modelPath := fs.String("model", "", "model XML file")
	diagram := fs.String("diagram", "", "object diagram name")
	from := fs.String("from", "", "requester component")
	to := fs.String("to", "", "provider component")
	maxDepth := fs.Int("maxdepth", 0, "bound path length in hops (0 = unbounded)")
	maxPaths := fs.Int("maxpaths", 0, "stop after N paths (0 = unbounded)")
	k := fs.Int("k", 0, "return the k cheapest paths instead of enumerating all (0 = enumerate)")
	cost := fs.String("cost", "", `ranking metric for -k: "hops" (default) or "throughput"`)
	trace := fs.Bool("trace", false, "print the span tree with per-stage timings after the run")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *modelPath == "" || *diagram == "" || *from == "" || *to == "" {
		return fmt.Errorf("paths: -model, -diagram, -from and -to are required")
	}
	metric, err := upsim.ParseCostMetric(*cost)
	if err != nil {
		return fmt.Errorf("paths: %w", err)
	}
	m, err := loadModel(*modelPath)
	if err != nil {
		return err
	}
	ctx, printTrace := traceSpan(*trace, "upsim.paths")
	gen, err := upsim.NewGeneratorContext(ctx, m, *diagram)
	if err != nil {
		return err
	}
	if *k > 0 {
		// Ranked discovery runs on the generator's compiled kernel, which
		// carries the stereotype cost view resolved at compile time.
		_, disc := upsim.StartSpan(ctx, "step7.kbest")
		paths, stats, err := gen.Compiled().KShortest(*from, *to,
			upsim.PathOptions{K: *k, CostMetric: metric})
		disc.SetAttr("paths", stats.Paths)
		disc.SetAttr("edge_visits", stats.EdgeVisits)
		disc.End()
		if err != nil {
			return err
		}
		for _, p := range paths {
			fmt.Printf("%-10.4g %s\n", gen.Compiled().PathCost(metric, p), p)
		}
		fmt.Printf("# %d paths by %s cost, %d nodes visited, %d edge visits\n",
			len(paths), metric, stats.NodeVisits, stats.EdgeVisits)
		printTrace()
		return nil
	}
	g := gen.Graph()
	_, disc := upsim.StartSpan(ctx, "step7.pathdisc")
	paths, stats, err := upsim.AllPaths(g, *from, *to,
		upsim.PathOptions{MaxDepth: *maxDepth, MaxPaths: *maxPaths})
	disc.SetAttr("paths", stats.Paths)
	disc.SetAttr("edge_visits", stats.EdgeVisits)
	disc.End()
	if err != nil {
		return err
	}
	for _, p := range paths {
		fmt.Println(p)
	}
	fmt.Printf("# %d paths, %d nodes visited, %d edge visits, max stack %d\n",
		stats.Paths, stats.NodeVisits, stats.EdgeVisits, stats.MaxStack)
	printTrace()
	return nil
}

func cmdGenerate(args []string) error {
	fs := flag.NewFlagSet("generate", flag.ContinueOnError)
	modelPath := fs.String("model", "", "model XML file")
	diagram := fs.String("diagram", "", "infrastructure object diagram name")
	svcName := fs.String("service", "", "activity name of the composite service")
	mappingPath := fs.String("mapping", "", "service mapping XML file")
	name := fs.String("name", "upsim", "name of the generated UPSIM diagram")
	dotOut := fs.String("dot", "", "optional DOT output path for the UPSIM")
	modelOut := fs.String("out", "", "optional path to write the model including the UPSIM diagram")
	trace := fs.Bool("trace", false, "print the span tree with per-stage timings after the run")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *modelPath == "" || *diagram == "" || *svcName == "" || *mappingPath == "" {
		return fmt.Errorf("generate: -model, -diagram, -service and -mapping are required")
	}
	m, err := loadModel(*modelPath)
	if err != nil {
		return err
	}
	act, ok := m.Activity(*svcName)
	if !ok {
		return fmt.Errorf("generate: model has no activity %q", *svcName)
	}
	svc, err := upsim.ServiceFromActivity(act)
	if err != nil {
		return err
	}
	mp, err := loadMapping(*mappingPath)
	if err != nil {
		return err
	}
	ctx, printTrace := traceSpan(*trace, "upsim.generate")
	gen, err := upsim.NewGeneratorContext(ctx, m, *diagram)
	if err != nil {
		return err
	}
	res, err := gen.GenerateContext(ctx, svc, mp, *name, upsim.Options{})
	if err != nil {
		return err
	}
	fmt.Printf("UPSIM %q: %d components, %d links, %d paths\n",
		*name, res.Graph.NumNodes(), res.Graph.NumEdges(), res.TotalPaths)
	for _, inst := range res.UPSIM.Instances() {
		fmt.Println("  ", inst.Signature())
	}
	for _, sp := range res.Services {
		fmt.Printf("  service %-12s %s->%s: %d paths, %d nodes visited, %d edge visits\n",
			sp.AtomicService, sp.Requester, sp.Provider,
			sp.Stats.Paths, sp.Stats.NodeVisits, sp.Stats.EdgeVisits)
	}
	printTrace()
	if *dotOut != "" {
		if err := os.WriteFile(*dotOut, []byte(upsim.ToDOT(res.Graph, *name)), 0o644); err != nil {
			return err
		}
		fmt.Println("wrote", *dotOut)
	}
	if *modelOut != "" {
		f, err := os.Create(*modelOut)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := upsim.WriteModel(f, m); err != nil {
			return err
		}
		fmt.Println("wrote", *modelOut)
	}
	return nil
}

func cmdAvail(args []string) error {
	fs := flag.NewFlagSet("avail", flag.ContinueOnError)
	modelPath := fs.String("model", "", "model XML file")
	diagram := fs.String("diagram", "", "infrastructure object diagram name")
	svcName := fs.String("service", "", "activity name of the composite service")
	mappingPath := fs.String("mapping", "", "service mapping XML file")
	formula1 := fs.Bool("formula1", false, "use the paper's Formula 1 instead of the exact component availability")
	mcSamples := fs.Int("mc", 200000, "Monte-Carlo sample count")
	seed := fs.Int64("seed", 1, "Monte-Carlo seed")
	mcWorkers := fs.Int("mc-workers", 0, "Monte-Carlo workers: 0 sequential, >0 that many shards, <0 one per CPU")
	trace := fs.Bool("trace", false, "print the span tree with per-stage timings after the run")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *modelPath == "" || *diagram == "" || *svcName == "" || *mappingPath == "" {
		return fmt.Errorf("avail: -model, -diagram, -service and -mapping are required")
	}
	m, err := loadModel(*modelPath)
	if err != nil {
		return err
	}
	act, ok := m.Activity(*svcName)
	if !ok {
		return fmt.Errorf("avail: model has no activity %q", *svcName)
	}
	svc, err := upsim.ServiceFromActivity(act)
	if err != nil {
		return err
	}
	mp, err := loadMapping(*mappingPath)
	if err != nil {
		return err
	}
	ctx, printTrace := traceSpan(*trace, "upsim.avail")
	gen, err := upsim.NewGeneratorContext(ctx, m, *diagram)
	if err != nil {
		return err
	}
	res, err := gen.GenerateContext(ctx, svc, mp, "avail-analysis", upsim.Options{})
	if err != nil {
		return err
	}
	fmt.Printf("UPSIM: %d components, %d links, %d paths, %d expansions pruned\n",
		res.Graph.NumNodes(), res.Graph.NumEdges(), res.TotalPaths, res.Pruned)
	model := upsim.ModelExact
	if *formula1 {
		model = upsim.ModelFormula1
	}
	_, cs, _, err := upsim.CompiledStructureOf(res, model)
	if err != nil {
		return err
	}
	fmt.Printf("compiled kernel: %d components interned, %d-word bitsets\n",
		cs.NumComponents(), cs.Words())
	rep, err := upsim.AnalyzeWithOptions(ctx, res, model, *mcSamples, *seed,
		upsim.AnalyzeOptions{MCWorkers: *mcWorkers})
	if err != nil {
		return err
	}
	fmt.Printf("service %q, %d UPSIM components (%s component model)\n",
		*svcName, rep.Components, model)
	fmt.Printf("exact:        %.10f\n", rep.Exact)
	fmt.Printf("naive RBD:    %.10f\n", rep.RBDApprox)
	fmt.Printf("fault tree:   %.10f\n", rep.FTApprox)
	sampler := "sequential"
	if *mcWorkers != 0 {
		sampler = fmt.Sprintf("%d workers", *mcWorkers)
		if *mcWorkers < 0 {
			sampler = "one worker per CPU"
		}
	}
	fmt.Printf("Monte Carlo:  %.6f ± %.6f (%d samples, %s)\n", rep.MonteCarlo, rep.MCStdErr, *mcSamples, sampler)
	fmt.Printf("downtime:     %.1f hours/year\n", rep.DowntimePerYearHours)
	printTrace()
	return nil
}

func cmdExplain(args []string) error {
	fs := flag.NewFlagSet("explain", flag.ContinueOnError)
	modelPath := fs.String("model", "", "model XML file")
	diagram := fs.String("diagram", "", "infrastructure object diagram name")
	svcName := fs.String("service", "", "activity name of the composite service")
	mappingPath := fs.String("mapping", "", "service mapping XML file")
	caseStudy := fs.Bool("casestudy", false, "explain the built-in USI case study (printing service, Table I mapping)")
	top := fs.Int("top", 5, "rows per ranking table (0 = all)")
	formula1 := fs.Bool("formula1", false, "use the paper's Formula 1 instead of the exact component availability")
	legacy := fs.Bool("legacy", false, "attribute through the legacy map-based kernel (numbers are identical)")
	cutLimit := fs.Int("cutlimit", 0, "cut-set expansion budget (0 = default)")
	jsonOut := fs.Bool("json", false, "emit the report as JSON instead of text")
	trace := fs.Bool("trace", false, "print the span tree with per-stage timings after the run")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var (
		m   *upsim.Model
		svc *upsim.Composite
		mp  *upsim.Mapping
		err error
	)
	if *caseStudy {
		if m, err = upsim.USIModel(); err != nil {
			return err
		}
		if svc, err = upsim.USIPrintingService(m); err != nil {
			return err
		}
		mp = upsim.USITableIMapping()
		*diagram = upsim.USIDiagramName
	} else {
		if *modelPath == "" || *diagram == "" || *svcName == "" || *mappingPath == "" {
			return fmt.Errorf("explain: -model, -diagram, -service and -mapping are required (or use -casestudy)")
		}
		if m, err = loadModel(*modelPath); err != nil {
			return err
		}
		act, ok := m.Activity(*svcName)
		if !ok {
			return fmt.Errorf("explain: model has no activity %q", *svcName)
		}
		if svc, err = upsim.ServiceFromActivity(act); err != nil {
			return err
		}
		if mp, err = loadMapping(*mappingPath); err != nil {
			return err
		}
	}
	ctx, printTrace := traceSpan(*trace, "upsim.explain")
	gen, err := upsim.NewGeneratorContext(ctx, m, *diagram)
	if err != nil {
		return err
	}
	res, err := gen.GenerateContext(ctx, svc, mp, "explain", upsim.Options{})
	if err != nil {
		return err
	}
	model := upsim.ModelExact
	if *formula1 {
		model = upsim.ModelFormula1
	}
	rep, err := upsim.Explain(ctx, res, upsim.ExplainOptions{
		Legacy:   *legacy,
		Model:    model,
		TopN:     *top,
		CutLimit: *cutLimit,
	})
	if err != nil {
		return err
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			return err
		}
		printTrace()
		return nil
	}
	renderExplain(os.Stdout, rep)
	printTrace()
	return nil
}

// renderExplain writes the human-readable provenance & attribution report:
// per-service path statistics and discovery trees, then the ranked
// attribution tables. The numbers come straight from the ExplainReport, so
// they match POST /api/v1/explain for the same inputs.
func renderExplain(w io.Writer, rep *upsim.ExplainReport) {
	fmt.Fprintf(w, "explain %q (%s kernel, %s component model)\n", rep.Name, rep.Kernel, rep.Model)
	fmt.Fprintf(w, "paths: %d total (%d direct, %d transitive), length %d..%d, mean %.2f\n",
		rep.Stats.Count, rep.Stats.Direct, rep.Stats.Transitive,
		rep.Stats.MinLength, rep.Stats.MaxLength, rep.Stats.MeanLength)
	if rep.Truncated {
		fmt.Fprintln(w, "WARNING: discovery truncated at MaxPaths; provenance is a lower bound")
	}
	for _, svc := range rep.Services {
		fmt.Fprintf(w, "\nservice %q  %s -> %s\n", svc.AtomicService, svc.Requester, svc.Provider)
		st := svc.Stats
		fmt.Fprintf(w, "  paths=%d direct=%d transitive=%d depth=%d..%d mean=%.2f\n",
			st.Count, st.Direct, st.Transitive, st.MinLength, st.MaxLength, st.MeanLength)
		depths := make([]int, 0, len(st.DepthHistogram))
		for d := range st.DepthHistogram {
			depths = append(depths, d)
		}
		sort.Ints(depths)
		fmt.Fprint(w, "  depth histogram:")
		for _, d := range depths {
			fmt.Fprintf(w, " %d:%d", d, st.DepthHistogram[d])
		}
		fmt.Fprintln(w)
		for _, p := range svc.Paths {
			fmt.Fprintf(w, "  path %d (%s, %d hops, cost %.4f, bottleneck %.0f Mbps): %s\n",
				p.Index, p.Type, p.Length, p.Cost, p.BottleneckMbps, strings.Join(p.Nodes, "—"))
		}
		if svc.Tree != nil {
			fmt.Fprintln(w, "  discovery tree:")
			for _, line := range strings.Split(strings.TrimRight(svc.Tree.Render(), "\n"), "\n") {
				fmt.Fprintf(w, "    %s\n", line)
			}
		}
	}
	attr := rep.Attribution
	if attr == nil {
		return
	}
	fmt.Fprintf(w, "\navailability %.10f (unavailability %.3e)\n", attr.Availability, attr.Unavailability)
	fmt.Fprintf(w, "\ntop %d of %d minimal cut sets by unavailability contribution:\n",
		len(attr.CutSets), attr.CutSetsTotal)
	for i, cs := range attr.CutSets {
		fmt.Fprintf(w, "  %2d. %6.2f%%  %.3e  {%s}\n",
			i+1, cs.Share*100, cs.Unavailability, strings.Join(cs.Components, ", "))
	}
	fmt.Fprintf(w, "\ntop %d of %d components by Birnbaum importance:\n",
		len(attr.Components), attr.ComponentsTotal)
	fmt.Fprintf(w, "  %-28s %-12s %-14s %-12s %s\n", "component", "class", "availability", "birnbaum", "fussell-vesely")
	for _, ci := range attr.Components {
		fmt.Fprintf(w, "  %-28s %-12s %.10f   %.4e  %.4e\n",
			ci.Component, ci.Class, ci.Availability, ci.Birnbaum, ci.FussellVesely)
	}
	fmt.Fprintln(w, "\nclass sensitivities (per instance-hour):")
	for _, cr := range attr.Classes {
		fmt.Fprintf(w, "  %-12s instances=%-3d dA/dMTBF=%.4e  dA/dMTTR=%.4e\n",
			cr.Class, cr.Instances, cr.DAvailDMTBF, cr.DAvailDMTTR)
	}
}

func cmdLint(args []string) error {
	fs := flag.NewFlagSet("lint", flag.ContinueOnError)
	modelPath := fs.String("model", "", "model XML file")
	diagram := fs.String("diagram", "", "infrastructure object diagram name (omit for a model-only lint)")
	svcName := fs.String("service", "", "activity name of the composite service (optional)")
	mappingPath := fs.String("mapping", "", "service mapping XML file (optional)")
	jsonOut := fs.Bool("json", false, "emit the report as JSON instead of text")
	caseStudy := fs.Bool("casestudy", false, "lint the built-in USI case study (printing service, Table I mapping)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var (
		m   *upsim.Model
		svc *upsim.Composite
		mp  *upsim.Mapping
		err error
	)
	if *caseStudy {
		if m, err = upsim.USIModel(); err != nil {
			return err
		}
		if svc, err = upsim.USIPrintingService(m); err != nil {
			return err
		}
		if _, err = upsim.USIBackupService(m); err != nil {
			return err
		}
		mp = upsim.USITableIMapping()
		*diagram = upsim.USIDiagramName
	} else {
		if *modelPath == "" {
			return fmt.Errorf("lint: -model is required (or use -casestudy)")
		}
		if m, err = loadModel(*modelPath); err != nil {
			return err
		}
		if *svcName != "" {
			act, ok := m.Activity(*svcName)
			if !ok {
				return fmt.Errorf("lint: model has no activity %q", *svcName)
			}
			// A structurally broken activity cannot be wrapped as a composite
			// service; lint the model anyway (the model-validate rule reports
			// the defect) and skip only the mapping-coverage rules.
			if svc, err = upsim.ServiceFromActivity(act); err != nil {
				fmt.Fprintf(os.Stderr, "upsim: lint: service %q is invalid (%v); mapping-coverage rules skipped\n",
					*svcName, err)
				svc = nil
			}
		}
		if *mappingPath != "" {
			if mp, err = loadMapping(*mappingPath); err != nil {
				return err
			}
		}
	}
	rep, err := upsim.Lint(m, *diagram, svc, mp)
	if err != nil {
		return err
	}
	if *jsonOut {
		err = rep.EncodeJSON(os.Stdout)
	} else {
		err = rep.Render(os.Stdout)
	}
	if err != nil {
		return err
	}
	if rep.HasErrors() {
		return fmt.Errorf("lint: %s", rep.Summary())
	}
	return nil
}

func cmdProject(args []string) error {
	fs := flag.NewFlagSet("project", flag.ContinueOnError)
	dir := fs.String("dir", ".", "workspace directory")
	doInit := fs.Bool("init", false, "initialise the directory with the built-in case study")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *doInit {
		m, err := upsim.USIModel()
		if err != nil {
			return err
		}
		if _, err := upsim.USIPrintingService(m); err != nil {
			return err
		}
		if _, err := upsim.USIBackupService(m); err != nil {
			return err
		}
		w, err := workspace.Init(*dir, m)
		if err != nil {
			return err
		}
		if err := w.SaveMapping("t1-p2", upsim.USITableIMapping()); err != nil {
			return err
		}
		if err := w.SaveMapping("t15-p3", upsim.USIT15P3Mapping()); err != nil {
			return err
		}
		if err := w.SaveMapping("backup-t7", upsim.USIBackupMapping()); err != nil {
			return err
		}
		fmt.Println("initialised", w.Summary())
		return nil
	}
	w, err := workspace.Load(*dir)
	if err != nil {
		return err
	}
	fmt.Println(w.Summary())
	return nil
}

func cmdQuery(args []string) error {
	fs := flag.NewFlagSet("query", flag.ContinueOnError)
	modelPath := fs.String("model", "", "model XML file")
	diagram := fs.String("diagram", "", "object diagram name (anchors the import)")
	patternPath := fs.String("patterns", "", "VTCL pattern file")
	name := fs.String("name", "", "pattern to run (default: first in the file)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *modelPath == "" || *diagram == "" || *patternPath == "" {
		return fmt.Errorf("query: -model, -diagram and -patterns are required")
	}
	m, err := loadModel(*modelPath)
	if err != nil {
		return err
	}
	gen, err := upsim.NewGenerator(m, *diagram)
	if err != nil {
		return err
	}
	src, err := os.ReadFile(*patternPath)
	if err != nil {
		return err
	}
	pats, err := vtcl.Parse(string(src))
	if err != nil {
		return err
	}
	pat := pats[0]
	if *name != "" {
		pat = nil
		for _, p := range pats {
			if p.Name == *name {
				pat = p
				break
			}
		}
		if pat == nil {
			return fmt.Errorf("query: pattern %q not in %s", *name, *patternPath)
		}
	}
	matches, err := pat.Match(gen.Space(), nil)
	if err != nil {
		return err
	}
	for _, b := range matches {
		for i, v := range pat.Vars {
			if i > 0 {
				fmt.Print("  ")
			}
			fmt.Printf("%s=%s", v, b[v].FQN())
		}
		fmt.Println()
	}
	fmt.Printf("# pattern %q: %d matches\n", pat.Name, len(matches))
	return nil
}

func cmdDot(args []string) error {
	fs := flag.NewFlagSet("dot", flag.ContinueOnError)
	modelPath := fs.String("model", "", "model XML file")
	diagram := fs.String("diagram", "", "object diagram name (kind=object)")
	kind := fs.String("kind", "object", "diagram kind: object, classes or activity")
	activity := fs.String("activity", "", "activity name (kind=activity)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *modelPath == "" {
		return fmt.Errorf("dot: -model is required")
	}
	m, err := loadModel(*modelPath)
	if err != nil {
		return err
	}
	switch *kind {
	case "object":
		if *diagram == "" {
			return fmt.Errorf("dot: -diagram is required for kind=object")
		}
		d, ok := m.Diagram(*diagram)
		if !ok {
			return fmt.Errorf("dot: model has no object diagram %q", *diagram)
		}
		fmt.Print(upsim.ToDOT(topology.FromObjectDiagram(d), *diagram))
	case "classes":
		fmt.Print(uml.ClassDiagramDOT(m))
	case "activity":
		if *activity == "" {
			return fmt.Errorf("dot: -activity is required for kind=activity")
		}
		act, ok := m.Activity(*activity)
		if !ok {
			return fmt.Errorf("dot: model has no activity %q", *activity)
		}
		fmt.Print(uml.ActivityDOT(act))
	default:
		return fmt.Errorf("dot: unknown kind %q (want object, classes or activity)", *kind)
	}
	return nil
}

func cmdRBD(args []string) error {
	fs := flag.NewFlagSet("rbd", flag.ContinueOnError)
	modelPath := fs.String("model", "", "model XML file")
	diagram := fs.String("diagram", "", "infrastructure object diagram name")
	svcName := fs.String("service", "", "activity name of the composite service")
	mappingPath := fs.String("mapping", "", "service mapping XML file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *modelPath == "" || *diagram == "" || *svcName == "" || *mappingPath == "" {
		return fmt.Errorf("rbd: -model, -diagram, -service and -mapping are required")
	}
	m, err := loadModel(*modelPath)
	if err != nil {
		return err
	}
	act, ok := m.Activity(*svcName)
	if !ok {
		return fmt.Errorf("rbd: model has no activity %q", *svcName)
	}
	svc, err := upsim.ServiceFromActivity(act)
	if err != nil {
		return err
	}
	mp, err := loadMapping(*mappingPath)
	if err != nil {
		return err
	}
	gen, err := upsim.NewGenerator(m, *diagram)
	if err != nil {
		return err
	}
	res, err := gen.Generate(svc, mp, "rbd", upsim.Options{})
	if err != nil {
		return err
	}
	avail := map[string]float64{}
	for _, inst := range res.Source.Instances() {
		mtbf, ok := inst.Property("MTBF")
		if !ok {
			return fmt.Errorf("rbd: component %q has no MTBF (availability profile missing)", inst.Name())
		}
		mttr, ok := inst.Property("MTTR")
		if !ok {
			return fmt.Errorf("rbd: component %q has no MTTR", inst.Name())
		}
		a, err := upsim.Availability(mtbf.AsReal(), mttr.AsReal())
		if err != nil {
			return err
		}
		avail[inst.Name()] = a
	}
	root, block, err := upsim.GenerateRBD(gen, "rbd", avail)
	if err != nil {
		return err
	}
	fmt.Print(upsim.RenderRBD(root))
	a, err := block.Availability()
	if err != nil {
		return err
	}
	fmt.Printf("# device-only RBD availability (independence assumption): %.10f\n", a)
	fmt.Println("# use 'upsim avail' for the exact analysis including connectors")
	return nil
}

// cmdWhatIf drives the live-topology what-if engine from the command line:
// generate the service, register it with the engine, and answer "what if
// these components or links fail?" plus the critical-component ranking.
// The numbers match POST /api/v1/whatif for the same inputs.
func cmdWhatIf(args []string) error {
	fs := flag.NewFlagSet("whatif", flag.ContinueOnError)
	modelPath := fs.String("model", "", "model XML file")
	diagram := fs.String("diagram", "", "infrastructure object diagram name")
	svcName := fs.String("service", "", "activity name of the composite service")
	mappingPath := fs.String("mapping", "", "service mapping XML file")
	caseStudy := fs.Bool("casestudy", false, "analyse the built-in USI case study (printing service, Table I mapping)")
	fail := fs.String("fail", "", "comma-separated failed components (node names or a--b#edge link ids)")
	failLink := fs.String("fail-link", "", "comma-separated failed links by endpoints (a--b, all parallel edges)")
	top := fs.Int("top", 10, "rows of the critical-component ranking (0 = all)")
	cutLimit := fs.Int("cutlimit", 0, "cut-set expansion budget for the importance join (0 = default)")
	formula1 := fs.Bool("formula1", false, "use the paper's Formula 1 instead of the exact component availability")
	jsonOut := fs.Bool("json", false, "emit the reports as JSON instead of text")
	trace := fs.Bool("trace", false, "print the span tree with per-stage timings after the run")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var (
		m   *upsim.Model
		svc *upsim.Composite
		mp  *upsim.Mapping
		err error
	)
	if *caseStudy {
		if m, err = upsim.USIModel(); err != nil {
			return err
		}
		if svc, err = upsim.USIPrintingService(m); err != nil {
			return err
		}
		mp = upsim.USITableIMapping()
		*diagram = upsim.USIDiagramName
		if *svcName == "" {
			*svcName = "printing"
		}
	} else {
		if *modelPath == "" || *diagram == "" || *svcName == "" || *mappingPath == "" {
			return fmt.Errorf("whatif: -model, -diagram, -service and -mapping are required (or use -casestudy)")
		}
		if m, err = loadModel(*modelPath); err != nil {
			return err
		}
		act, ok := m.Activity(*svcName)
		if !ok {
			return fmt.Errorf("whatif: model has no activity %q", *svcName)
		}
		if svc, err = upsim.ServiceFromActivity(act); err != nil {
			return err
		}
		if mp, err = loadMapping(*mappingPath); err != nil {
			return err
		}
	}
	ctx, printTrace := traceSpan(*trace, "upsim.whatif")
	gen, err := upsim.NewGeneratorContext(ctx, m, *diagram)
	if err != nil {
		return err
	}
	res, err := gen.GenerateContext(ctx, svc, mp, *svcName, upsim.Options{})
	if err != nil {
		return err
	}
	model := upsim.ModelExact
	if *formula1 {
		model = upsim.ModelFormula1
	}
	eng := upsim.NewWhatIfEngine(gen.Graph(), nil)
	if err := eng.Register(*svcName, "", res, model); err != nil {
		return err
	}

	failure := upsim.WhatIfFailure{}
	for _, c := range strings.Split(*fail, ",") {
		if c = strings.TrimSpace(c); c != "" {
			failure.Components = append(failure.Components, c)
		}
	}
	for _, l := range strings.Split(*failLink, ",") {
		if l = strings.TrimSpace(l); l != "" {
			failure.Links = append(failure.Links, l)
		}
	}
	var impact *upsim.WhatIfImpact
	if len(failure.Components) > 0 || len(failure.Links) > 0 {
		if impact, err = eng.Impact(failure); err != nil {
			return err
		}
	}
	crit, err := eng.Critical(ctx, *top, *cutLimit)
	if err != nil {
		return err
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		out := struct {
			Impact   *upsim.WhatIfImpact       `json:"impact,omitempty"`
			Critical []upsim.CriticalComponent `json:"critical"`
		}{impact, crit}
		if err := enc.Encode(out); err != nil {
			return err
		}
		printTrace()
		return nil
	}
	if impact != nil {
		fmt.Printf("failure impact (failed: %s)\n", strings.Join(impact.Failed, ", "))
		for _, d := range impact.Services {
			switch {
			case d.Dead:
				fmt.Printf("  %-16s %.10f -> DEAD (service cannot work)\n", d.Service, d.Baseline)
			case d.Affected:
				fmt.Printf("  %-16s %.10f -> %.10f (delta %+.3e)\n", d.Service, d.Baseline, d.Failed, d.Delta)
			default:
				fmt.Printf("  %-16s %.10f (unaffected)\n", d.Service, d.Baseline)
			}
		}
		fmt.Println()
	}
	fmt.Printf("critical components (top %d):\n", len(crit))
	fmt.Printf("  %-28s %-12s %-5s %-6s %-12s %s\n", "component", "class", "spof", "pairs", "birnbaum", "services")
	for _, cc := range crit {
		spof := "-"
		if cc.SinglePointOfFailure {
			spof = "YES"
		}
		fmt.Printf("  %-28s %-12s %-5s %-6d %.4e   %s\n",
			cc.Component, cc.Class, spof, cc.PairCuts, cc.Birnbaum, strings.Join(cc.Services, ","))
	}
	printTrace()
	return nil
}
