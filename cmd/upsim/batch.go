package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"upsim"
	"upsim/internal/server"
)

// batchFile is the on-disk request format of `upsim batch`: the HTTP
// BatchRequest schema (POST /api/v1/batch), with two CLI conveniences per
// item — modelFile/mappingFile load the XML from disk (relative paths
// resolve against the request file's directory) instead of inlining it.
type batchFile struct {
	Items   []batchFileItem `json:"items"`
	Workers int             `json:"workers,omitempty"`
}

// batchFileItem is one request item; the embedded server.BatchItem fields
// appear inline in the JSON.
type batchFileItem struct {
	server.BatchItem
	ModelFile   string `json:"modelFile,omitempty"`
	MappingFile string `json:"mappingFile,omitempty"`
}

// resolve loads the *File convenience fields into the wire fields.
func (it *batchFileItem) resolve(baseDir string) error {
	load := func(path string, dst *string, inlineSet bool, what string) error {
		if path == "" {
			return nil
		}
		if inlineSet {
			return fmt.Errorf("both %sXml and %sFile are set", what, what)
		}
		if !filepath.IsAbs(path) {
			path = filepath.Join(baseDir, path)
		}
		b, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		*dst = string(b)
		return nil
	}
	if err := load(it.ModelFile, &it.ModelXML, strings.TrimSpace(it.ModelXML) != "", "model"); err != nil {
		return err
	}
	return load(it.MappingFile, &it.MappingXML, strings.TrimSpace(it.MappingXML) != "", "mapping")
}

// cmdBatch executes a batch request file in-process: the same fan-out and
// shared cache as POST /api/v1/batch, without a daemon.
func cmdBatch(args []string) error {
	fs := flag.NewFlagSet("batch", flag.ExitOnError)
	reqPath := fs.String("req", "", "batch request file (JSON; see README 'Batch API')")
	workers := fs.Int("workers", 0, "worker pool bound (0 = request file's value, then GOMAXPROCS)")
	cacheSize := fs.Int("cache-size", 0, "generation cache capacity in entries (0 = default 128)")
	outPath := fs.String("out", "", "write the JSON response to this file instead of stdout")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *reqPath == "" {
		return fmt.Errorf("batch: -req is required")
	}
	raw, err := os.ReadFile(*reqPath)
	if err != nil {
		return err
	}
	var bf batchFile
	dec := json.NewDecoder(strings.NewReader(string(raw)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&bf); err != nil {
		return fmt.Errorf("batch: parsing %s: %w", *reqPath, err)
	}
	baseDir := filepath.Dir(*reqPath)
	req := server.BatchRequest{Workers: bf.Workers, Items: make([]server.BatchItem, len(bf.Items))}
	for i := range bf.Items {
		if err := bf.Items[i].resolve(baseDir); err != nil {
			return fmt.Errorf("batch: item %d: %w", i, err)
		}
		req.Items[i] = bf.Items[i].BatchItem
	}

	resp, err := server.RunBatch(context.Background(), upsim.NewCache(*cacheSize), *workers, &req)
	if err != nil {
		return err
	}
	out, err := json.MarshalIndent(resp, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	if *outPath != "" {
		if err := os.WriteFile(*outPath, out, 0o644); err != nil {
			return err
		}
	} else {
		os.Stdout.Write(out)
	}
	fmt.Fprintf(os.Stderr, "batch: %d items, %d errors, cache %s\n", len(resp.Results), resp.Errors, resp.Cache)
	if resp.Errors > 0 {
		return fmt.Errorf("batch: %d of %d items failed", resp.Errors, len(resp.Results))
	}
	return nil
}
