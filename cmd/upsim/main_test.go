package main

import (
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"upsim"
)

// withArtifacts writes the built-in case-study artifacts into a temp dir and
// returns their paths.
func withArtifacts(t *testing.T) (modelPath, mappingPath string) {
	t.Helper()
	dir := t.TempDir()
	modelPath = filepath.Join(dir, "usi.xml")
	mappingPath = filepath.Join(dir, "t1.xml")
	if err := run([]string{"casestudy", "-model", modelPath, "-mapping", mappingPath}); err != nil {
		t.Fatal(err)
	}
	return modelPath, mappingPath
}

// capture redirects stdout while fn runs and returns what was printed. A
// background reader drains the pipe so large outputs cannot deadlock the
// writer.
func capture(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	done := make(chan string, 1)
	go func() {
		data, _ := io.ReadAll(r)
		done <- string(data)
	}()
	runErr := fn()
	w.Close()
	os.Stdout = old
	return <-done, runErr
}

func TestCLICaseStudyAndInventory(t *testing.T) {
	modelPath, mappingPath := withArtifacts(t)
	if _, err := os.Stat(modelPath); err != nil {
		t.Fatalf("model not written: %v", err)
	}
	if _, err := os.Stat(mappingPath); err != nil {
		t.Fatalf("mapping not written: %v", err)
	}
	out, err := capture(t, func() error {
		return run([]string{"inventory", "-model", modelPath})
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`model "usi"`, "classes: 7", "printing", "backup"} {
		if !strings.Contains(out, want) {
			t.Errorf("inventory missing %q", want)
		}
	}
}

func TestCLIPaths(t *testing.T) {
	modelPath, _ := withArtifacts(t)
	out, err := capture(t, func() error {
		return run([]string{"paths", "-model", modelPath, "-diagram", "infrastructure",
			"-from", "t1", "-to", "printS"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "t1—e1—d1—c1—d4—printS") || !strings.Contains(out, "# 2 paths") {
		t.Errorf("paths output:\n%s", out)
	}
}

func TestCLIPathsRanked(t *testing.T) {
	modelPath, _ := withArtifacts(t)
	out, err := capture(t, func() error {
		return run([]string{"paths", "-model", modelPath, "-diagram", "infrastructure",
			"-from", "t1", "-to", "printS", "-k", "1", "-cost", "throughput"})
	})
	if err != nil {
		t.Fatal(err)
	}
	// k=1 returns just the cheapest path, with its cost leading the line.
	if !strings.Contains(out, "# 1 paths by throughput cost") {
		t.Errorf("ranked paths output:\n%s", out)
	}
	if !strings.Contains(out, "t1—") || !strings.Contains(out, "—printS") {
		t.Errorf("ranked paths output lacks a path line:\n%s", out)
	}
	// An unknown metric is rejected.
	if _, err := capture(t, func() error {
		return run([]string{"paths", "-model", modelPath, "-diagram", "infrastructure",
			"-from", "t1", "-to", "printS", "-k", "1", "-cost", "latency"})
	}); err == nil {
		t.Error("unknown -cost accepted")
	}
}

func TestCLIGenerateAndAvail(t *testing.T) {
	modelPath, mappingPath := withArtifacts(t)
	dir := t.TempDir()
	dotOut := filepath.Join(dir, "u.dot")
	modelOut := filepath.Join(dir, "out.xml")
	out, err := capture(t, func() error {
		return run([]string{"generate", "-model", modelPath, "-diagram", "infrastructure",
			"-service", "printing", "-mapping", mappingPath, "-name", "fig11",
			"-dot", dotOut, "-out", modelOut})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "10 components") {
		t.Errorf("generate output:\n%s", out)
	}
	if _, err := os.Stat(dotOut); err != nil {
		t.Error("DOT not written")
	}
	if _, err := os.Stat(modelOut); err != nil {
		t.Error("model not written")
	}
	out, err = capture(t, func() error {
		return run([]string{"avail", "-model", modelPath, "-diagram", "infrastructure",
			"-service", "printing", "-mapping", mappingPath, "-mc", "5000"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "exact:") || !strings.Contains(out, "downtime:") {
		t.Errorf("avail output:\n%s", out)
	}
}

func TestCLIDotKinds(t *testing.T) {
	modelPath, _ := withArtifacts(t)
	cases := []struct {
		args []string
		want string
	}{
		{[]string{"dot", "-model", modelPath, "-diagram", "infrastructure"}, `graph "infrastructure"`},
		{[]string{"dot", "-model", modelPath, "-kind", "classes"}, "shape=record"},
		{[]string{"dot", "-model", modelPath, "-kind", "activity", "-activity", "printing"}, `digraph "printing"`},
	}
	for _, c := range cases {
		out, err := capture(t, func() error { return run(c.args) })
		if err != nil {
			t.Fatalf("%v: %v", c.args, err)
		}
		if !strings.Contains(out, c.want) {
			t.Errorf("%v missing %q", c.args, c.want)
		}
	}
}

func TestCLIQueryAndRBD(t *testing.T) {
	modelPath, mappingPath := withArtifacts(t)
	patterns := filepath.Join(t.TempDir(), "q.vtcl")
	src := `pattern printers(P, C) = {
		instanceOf(P, "metamodel.uml.InstanceSpecification");
		directed(P, "classifier", C);
		name(C, "Printer");
	}`
	if err := os.WriteFile(patterns, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := capture(t, func() error {
		return run([]string{"query", "-model", modelPath, "-diagram", "infrastructure",
			"-patterns", patterns})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "3 matches") {
		t.Errorf("query output:\n%s", out)
	}
	out, err = capture(t, func() error {
		return run([]string{"rbd", "-model", modelPath, "-diagram", "infrastructure",
			"-service", "printing", "-mapping", mappingPath})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "[parallel]") || !strings.Contains(out, "RBD availability") {
		t.Errorf("rbd output:\n%s", out)
	}
}

// TestCLITrace checks the -trace flag: each pipeline stage (Steps 5–8, and
// the analysis stages for avail) shows up as a span in the printed tree.
func TestCLITrace(t *testing.T) {
	modelPath, mappingPath := withArtifacts(t)

	out, err := capture(t, func() error {
		return run([]string{"generate", "-model", modelPath, "-diagram", "infrastructure",
			"-service", "printing", "-mapping", mappingPath, "-name", "traced", "-trace"})
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, span := range []string{
		"upsim.generate", "step5.import_uml", "step6.import_mapping",
		"step7.pathdisc", "step8.merge",
	} {
		if !strings.Contains(out, span) {
			t.Errorf("generate -trace missing span %q:\n%s", span, out)
		}
	}
	if !strings.Contains(out, "t1->printS: 2 paths") || !strings.Contains(out, "nodes visited") {
		t.Errorf("generate missing per-service stats:\n%s", out)
	}

	out, err = capture(t, func() error {
		return run([]string{"paths", "-model", modelPath, "-diagram", "infrastructure",
			"-from", "t1", "-to", "printS", "-trace"})
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, span := range []string{"upsim.paths", "step5.import_uml", "step7.pathdisc"} {
		if !strings.Contains(out, span) {
			t.Errorf("paths -trace missing span %q:\n%s", span, out)
		}
	}
	if !strings.Contains(out, "# 2 paths, 51 nodes visited, 50 edge visits") {
		t.Errorf("paths stats line:\n%s", out)
	}

	out, err = capture(t, func() error {
		return run([]string{"avail", "-model", modelPath, "-diagram", "infrastructure",
			"-service", "printing", "-mapping", mappingPath, "-mc", "5000", "-trace"})
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, span := range []string{"upsim.avail", "avail.analyze", "avail.exact", "avail.montecarlo"} {
		if !strings.Contains(out, span) {
			t.Errorf("avail -trace missing span %q:\n%s", span, out)
		}
	}

	// Without -trace no tree is printed.
	out, err = capture(t, func() error {
		return run([]string{"paths", "-model", modelPath, "-diagram", "infrastructure",
			"-from", "t1", "-to", "printS"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out, "step5.import_uml") {
		t.Errorf("trace printed without -trace:\n%s", out)
	}
}

func TestCLIExplain(t *testing.T) {
	modelPath, mappingPath := withArtifacts(t)

	out, err := capture(t, func() error {
		return run([]string{"explain", "-model", modelPath, "-diagram", "infrastructure",
			"-service", "printing", "-mapping", mappingPath, "-top", "3"})
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"compiled kernel",
		"paths: 10 total (0 direct, 10 transitive), length 5..6, mean 5.50",
		`service "Request printing"  t1 -> printS`,
		"depth histogram: 5:1 6:1",
		"t1—e1—d1—c1—d4—printS",
		"discovery tree:",
		"t1:Comp  paths=2",
		"terminal=1",
		"top 3 of 20 minimal cut sets",
		"top 3 of 20 components by Birnbaum importance",
		"class sensitivities",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("explain output missing %q:\n%s", want, out)
		}
	}

	// -legacy renders the identical report apart from the kernel tag.
	legacy, err := capture(t, func() error {
		return run([]string{"explain", "-model", modelPath, "-diagram", "infrastructure",
			"-service", "printing", "-mapping", mappingPath, "-top", "3", "-legacy"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Replace(legacy, "legacy kernel", "compiled kernel", 1) != out {
		t.Error("legacy explain output differs from compiled beyond the kernel tag")
	}

	// -casestudy needs no files; -json emits the machine-readable report.
	jsonOut, err := capture(t, func() error {
		return run([]string{"explain", "-casestudy", "-json"})
	})
	if err != nil {
		t.Fatal(err)
	}
	var rep upsim.ExplainReport
	if err := json.Unmarshal([]byte(jsonOut), &rep); err != nil {
		t.Fatalf("explain -json does not parse: %v", err)
	}
	if rep.Stats.Count != 10 || rep.Attribution == nil || len(rep.Services) != 5 {
		t.Errorf("explain -json report incomplete: stats=%+v services=%d", rep.Stats, len(rep.Services))
	}

	// -trace surfaces the explain spans alongside the pipeline spans, and
	// the depth statistics printed above come from the same Statistics the
	// server responses embed.
	out, err = capture(t, func() error {
		return run([]string{"explain", "-casestudy", "-trace"})
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, span := range []string{
		"upsim.explain", "step7.pathdisc", "explain.report", "explain.paths", "explain.attribution",
	} {
		if !strings.Contains(out, span) {
			t.Errorf("explain -trace missing span %q:\n%s", span, out)
		}
	}
	if !strings.Contains(out, "depth=5..6 mean=5.50") {
		t.Errorf("explain -trace missing depth stats:\n%s", out)
	}
}

func TestCLIErrors(t *testing.T) {
	modelPath, mappingPath := withArtifacts(t)
	cases := [][]string{
		{},
		{"bogus"},
		{"inventory"},
		{"paths", "-model", modelPath},
		{"paths", "-model", modelPath, "-diagram", "infrastructure", "-from", "ghost", "-to", "printS"},
		{"generate", "-model", modelPath},
		{"generate", "-model", modelPath, "-diagram", "infrastructure", "-service", "ghost", "-mapping", mappingPath},
		{"avail", "-model", modelPath},
		{"dot"},
		{"dot", "-model", modelPath, "-kind", "nonsense"},
		{"dot", "-model", modelPath, "-kind", "activity"},
		{"dot", "-model", modelPath, "-kind", "object", "-diagram", "ghost"},
		{"query", "-model", modelPath},
		{"query", "-model", modelPath, "-diagram", "infrastructure", "-patterns", "/nonexistent.vtcl"},
		{"rbd", "-model", modelPath},
		{"inventory", "-model", "/nonexistent.xml"},
	}
	for _, args := range cases {
		if _, err := capture(t, func() error { return run(args) }); err == nil {
			t.Errorf("run(%v) should fail", args)
		}
	}
	// Help succeeds.
	if _, err := capture(t, func() error { return run([]string{"help"}) }); err != nil {
		t.Errorf("help failed: %v", err)
	}
}

func TestCLIQueryNamedPattern(t *testing.T) {
	modelPath, _ := withArtifacts(t)
	patterns := filepath.Join(t.TempDir(), "multi.vtcl")
	src := `pattern first(A) = { name(A, "t1"); below(A, "models.usi.diagrams.infrastructure"); }
pattern second(B) = { name(B, "p2"); below(B, "models.usi.diagrams.infrastructure"); }`
	if err := os.WriteFile(patterns, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := capture(t, func() error {
		return run([]string{"query", "-model", modelPath, "-diagram", "infrastructure",
			"-patterns", patterns, "-name", "second"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "p2") || !strings.Contains(out, `pattern "second"`) {
		t.Errorf("named query output:\n%s", out)
	}
	if _, err := capture(t, func() error {
		return run([]string{"query", "-model", modelPath, "-diagram", "infrastructure",
			"-patterns", patterns, "-name", "ghost"})
	}); err == nil {
		t.Error("unknown pattern name should fail")
	}
}

func TestCLIProject(t *testing.T) {
	dir := t.TempDir()
	out, err := capture(t, func() error {
		return run([]string{"project", "-dir", dir, "-init"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "initialised") || !strings.Contains(out, "t1-p2") {
		t.Errorf("project init output:\n%s", out)
	}
	out, err = capture(t, func() error {
		return run([]string{"project", "-dir", dir})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, `model "usi"`) || !strings.Contains(out, "backup-t7") {
		t.Errorf("project info output:\n%s", out)
	}
	// Double init fails; loading a non-workspace fails.
	if _, err := capture(t, func() error { return run([]string{"project", "-dir", dir, "-init"}) }); err == nil {
		t.Error("double init should fail")
	}
	if _, err := capture(t, func() error { return run([]string{"project", "-dir", t.TempDir()}) }); err == nil {
		t.Error("empty dir should fail")
	}
}

func TestCLILintCaseStudy(t *testing.T) {
	out, err := capture(t, func() error {
		return run([]string{"lint", "-casestudy"})
	})
	if err != nil {
		t.Fatalf("pristine case study must lint clean: %v", err)
	}
	if !strings.Contains(out, "0 errors") {
		t.Errorf("lint output:\n%s", out)
	}
}

func TestCLILintFilesAndJSON(t *testing.T) {
	modelPath, mappingPath := withArtifacts(t)
	out, err := capture(t, func() error {
		return run([]string{"lint", "-model", modelPath, "-diagram", "infrastructure",
			"-service", "printing", "-mapping", mappingPath})
	})
	if err != nil {
		t.Fatalf("lint on exported artifacts: %v\n%s", err, out)
	}
	if !strings.Contains(out, "0 errors, 0 warnings") {
		t.Errorf("lint output:\n%s", out)
	}

	out, err = capture(t, func() error {
		return run([]string{"lint", "-json", "-model", modelPath, "-diagram", "infrastructure",
			"-service", "printing", "-mapping", mappingPath})
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := upsim.DecodeLintReport(strings.NewReader(out))
	if err != nil {
		t.Fatalf("JSON report does not decode: %v\n%s", err, out)
	}
	if rep.Errors != 0 || len(rep.Diagnostics) != 0 {
		t.Errorf("report = %+v", rep)
	}
	if rep.RulesRun < 10 {
		t.Errorf("rulesRun = %d, want >= 10", rep.RulesRun)
	}
}

func TestCLILintBrokenMappingExitsNonZero(t *testing.T) {
	modelPath, _ := withArtifacts(t)
	badMapping := filepath.Join(t.TempDir(), "bad.xml")
	const xml = `<servicemapping>
  <atomicservice id="Request printing"><requester id="ghost"/><provider id="p2"/></atomicservice>
</servicemapping>`
	if err := os.WriteFile(badMapping, []byte(xml), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := capture(t, func() error {
		return run([]string{"lint", "-model", modelPath, "-diagram", "infrastructure",
			"-service", "printing", "-mapping", badMapping})
	})
	if err == nil {
		t.Fatal("lint accepted a mapping with a dangling requester")
	}
	if !strings.Contains(err.Error(), "error") {
		t.Errorf("exit error = %v", err)
	}
	for _, want := range []string{"mapping-dangling-ref", "ghost", "mapping-missing-pair"} {
		if !strings.Contains(out, want) {
			t.Errorf("lint report missing %q:\n%s", want, out)
		}
	}
}

func TestCLILintModelOnly(t *testing.T) {
	modelPath, _ := withArtifacts(t)
	out, err := capture(t, func() error {
		return run([]string{"lint", "-model", modelPath, "-diagram", "infrastructure"})
	})
	if err != nil {
		t.Fatalf("model-only lint: %v\n%s", err, out)
	}
	if !strings.Contains(out, "0 errors") {
		t.Errorf("lint output:\n%s", out)
	}
	// Without -model and without -casestudy the command refuses to run.
	if _, err := capture(t, func() error { return run([]string{"lint"}) }); err == nil {
		t.Error("lint without -model succeeded")
	}
}
