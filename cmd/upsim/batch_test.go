package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"upsim/internal/server"
)

// writeBatchFile writes a request file next to the case-study artifacts so
// that relative modelFile/mappingFile paths resolve.
func writeBatchFile(t *testing.T, dir string, content string) string {
	t.Helper()
	path := filepath.Join(dir, "requests.json")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCLIBatch(t *testing.T) {
	modelPath, _ := withArtifacts(t)
	dir := filepath.Dir(modelPath)
	reqPath := writeBatchFile(t, dir, `{
	  "workers": 2,
	  "items": [
	    {"modelFile": "usi.xml", "diagram": "infrastructure", "service": "printing", "mappingFile": "t1.xml", "name": "upsim"},
	    {"op": "qos", "modelFile": "usi.xml", "diagram": "infrastructure", "service": "printing", "mappingFile": "t1.xml", "name": "upsim"},
	    {"op": "availability", "mcSamples": 1000, "modelFile": "usi.xml", "diagram": "infrastructure", "service": "printing", "mappingFile": "t1.xml", "name": "upsim"}
	  ]
	}`)
	outPath := filepath.Join(dir, "resp.json")
	if err := run([]string{"batch", "-req", reqPath, "-out", outPath}); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	var resp server.BatchResponse
	if err := json.Unmarshal(raw, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Errors != 0 || len(resp.Results) != 3 {
		t.Fatalf("response = %d results, %d errors; body %s", len(resp.Results), resp.Errors, raw)
	}
	// The three ops share one generate input: one pipeline run, two reuses.
	// The availability and qos items additionally each populate their own
	// analysis cache entry, adding one first-time miss apiece.
	if resp.Cache.Misses != 3 || resp.Cache.Hits+resp.Cache.Shared != 2 {
		t.Errorf("cache = %s; want 3 misses (1 generation + 2 analyses), 2 hits+shared", resp.Cache)
	}
}

func TestCLIBatchStdoutAndErrors(t *testing.T) {
	modelPath, _ := withArtifacts(t)
	dir := filepath.Dir(modelPath)

	// A failing item must surface in the output and flip the exit status.
	reqPath := writeBatchFile(t, dir, `{
	  "items": [
	    {"modelFile": "usi.xml", "diagram": "infrastructure", "service": "ghost", "mappingFile": "t1.xml"}
	  ]
	}`)
	out, err := capture(t, func() error {
		return run([]string{"batch", "-req", reqPath})
	})
	if err == nil || !strings.Contains(err.Error(), "1 of 1 items failed") {
		t.Fatalf("err = %v, want failed-items error", err)
	}
	if !strings.Contains(out, `no activity \"ghost\"`) {
		t.Errorf("stdout lacks the item error: %s", out)
	}
}

func TestCLIBatchValidation(t *testing.T) {
	modelPath, _ := withArtifacts(t)
	dir := filepath.Dir(modelPath)

	if err := run([]string{"batch"}); err == nil || !strings.Contains(err.Error(), "-req is required") {
		t.Errorf("missing -req: err = %v", err)
	}
	if err := run([]string{"batch", "-req", filepath.Join(dir, "absent.json")}); err == nil {
		t.Error("missing request file must fail")
	}
	both := writeBatchFile(t, dir, `{
	  "items": [
	    {"modelXml": "<x/>", "modelFile": "usi.xml", "diagram": "infrastructure", "service": "printing", "mappingFile": "t1.xml"}
	  ]
	}`)
	if err := run([]string{"batch", "-req", both}); err == nil || !strings.Contains(err.Error(), "both modelXml and modelFile") {
		t.Errorf("conflicting model sources: err = %v", err)
	}
	unknown := writeBatchFile(t, dir, `{"items": [{"bogus": 1}]}`)
	if err := run([]string{"batch", "-req", unknown}); err == nil || !strings.Contains(err.Error(), "bogus") {
		t.Errorf("unknown field: err = %v", err)
	}
}
