package main

import "testing"

// TestExitCodes pins the driver contract: 0 clean, 1 diagnostics, 2 driver
// failure — the codes CI branches on.
func TestExitCodes(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want int
	}{
		{"rules listing", []string{"-rules"}, 0},
		{"clean package", []string{"../../internal/gostatic"}, 0},
		{"clean tree", []string{"../../..."}, 0},
		{"mutated fixture", []string{"../../internal/gostatic/testdata/src/hotalloc"}, 1},
		{"mutated fixture json", []string{"-json", "../../internal/gostatic/testdata/src/poolreturn"}, 1},
		{"missing dir", []string{"../../no/such/dir"}, 2},
		{"bad flag", []string{"-definitely-not-a-flag"}, 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := run(tc.args); got != tc.want {
				t.Errorf("run(%v) = %d, want %d", tc.args, got, tc.want)
			}
		})
	}
}
