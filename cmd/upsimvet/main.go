// Command upsimvet runs the repository's Go static-analysis suite
// (internal/gostatic) over the named packages: the code-level counterpart of
// `upsim lint`, which analyses models. It enforces the kernel, parity and
// observability invariants — allocation-free //upsim:hotpath functions,
// shared legacy≡compiled error-format constants, StartSpan/End pairing,
// sync.Pool Get/Put balance, and explicit json tags on API payload structs.
//
// Usage:
//
//	upsimvet [-json] [-rules] [packages]
//
// Packages default to ./... — directories, or directory/... patterns, like
// the go tool. The exit status is 0 when the tree is clean, 1 when any
// diagnostic was emitted, 2 on a driver failure (unparseable file, bad
// pattern). CI runs `upsimvet ./...` as a required step.
package main

import (
	"flag"
	"fmt"
	"os"

	"upsim/internal/gostatic"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("upsimvet", flag.ContinueOnError)
	jsonOut := fs.Bool("json", false, "emit the report as JSON instead of text")
	listRules := fs.Bool("rules", false, "list the registered rules and exit")
	fs.Usage = func() {
		fmt.Fprintln(fs.Output(), "usage: upsimvet [-json] [-rules] [packages]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	reg := gostatic.Default()
	if *listRules {
		for _, rule := range reg.Rules() {
			fmt.Printf("%-12s %-8s %s\n", rule.ID(), rule.Severity(), rule.Doc())
		}
		return 0
	}
	pkgs, err := gostatic.Load(fs.Args()...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "upsimvet:", err)
		return 2
	}
	rep, err := reg.Run(pkgs)
	if err != nil {
		fmt.Fprintln(os.Stderr, "upsimvet:", err)
		return 2
	}
	if *jsonOut {
		if err := rep.EncodeJSON(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "upsimvet:", err)
			return 2
		}
	} else if err := rep.Render(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "upsimvet:", err)
		return 2
	}
	if !rep.Clean() {
		return 1
	}
	return 0
}
