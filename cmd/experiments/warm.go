package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"

	"upsim/internal/casestudy"
	"upsim/internal/core"
	"upsim/internal/mapping"
	"upsim/internal/modelgen"
	"upsim/internal/server"
	"upsim/internal/service"
	"upsim/internal/uml"
)

// warmOut is where expWarm writes its machine-readable record; empty skips
// the file. main sets it from -warm-out. The experiment shares the -smoke
// switch (dependSmoke) with expDepend/expWhatIf.
var warmOut string

// warmGenWorkload is one row of the cold-generate comparison: the pre-PR
// per-request build (XML decode + Step 5 import + topology extraction + CSR
// compile + generation) against the pooled path (generator-pool acquire +
// generation), best-of-reps nanoseconds per request. The fresh baseline is
// conservative: it already benefits from the vpm space pool's recycled
// arenas, which the true pre-PR code lacked.
type warmGenWorkload struct {
	Model      string  `json:"model"`
	XMLBytes   int     `json:"modelXmlBytes"`
	FreshNs    int64   `json:"freshNs"`
	PooledNs   int64   `json:"pooledNs"`
	Speedup    float64 `json:"speedup"`
	Parity     bool    `json:"parity,omitempty"`
	RunsPerRep int     `json:"runsPerRep"`
}

// warmRouteRow is one row of the HTTP warm-lane table: allocations and
// latency of a repeated (byte-identical) analysis request against the
// latency of a semantically-identical but byte-distinct request, which
// still pays JSON decode + pool acquire before hitting the result cache.
type warmRouteRow struct {
	Route       string  `json:"route"`
	AllocsPerOp float64 `json:"allocsPerOp"`
	WarmNs      int64   `json:"warmNs"`
	ColdNs      int64   `json:"coldCacheHitNs"`
	Speedup     float64 `json:"speedup"`
	Parity      bool    `json:"parity,omitempty"`
	RunsPerRep  int     `json:"runsPerRep"`
}

// warmBench is the BENCH_warm.json schema. GenerateFloorSpeedup is the worst
// fresh-vs-pooled ratio across the corpus (the acceptance floor is 3x);
// MaxWarmAllocs is the largest AllocsPerRun over the availability and qos
// warm hits (the acceptance ceiling is 0). Regression flags any
// Mann-Whitney-confirmed slowdown in any measured family.
type warmBench struct {
	GOMAXPROCS           int               `json:"gomaxprocs"`
	Reps                 int               `json:"repsPerVariant"`
	WindowNs             int64             `json:"minSampleWindowNs"`
	Smoke                bool              `json:"smoke,omitempty"`
	Generate             []warmGenWorkload `json:"coldGenerate"`
	GenerateFloorSpeedup float64           `json:"coldGenerateFloorSpeedup"`
	Routes               []warmRouteRow    `json:"warmRoutes"`
	MaxWarmAllocs        float64           `json:"maxWarmAllocsPerOp"`
	Regression           bool              `json:"regression"`
}

// warmReplayBody is a resettable request body so one http.Request serves
// repeatedly without per-iteration reader allocation.
type warmReplayBody struct{ r bytes.Reader }

func (b *warmReplayBody) Read(p []byte) (int, error) { return b.r.Read(p) }
func (b *warmReplayBody) Close() error               { return nil }

// warmNullWriter discards response bytes behind a persistent header map, so
// repeated serves exercise only the server's own work.
type warmNullWriter struct {
	h      http.Header
	status int
}

func (w *warmNullWriter) Header() http.Header { return w.h }
func (w *warmNullWriter) WriteHeader(s int)   { w.status = s }
func (w *warmNullWriter) Write(p []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return len(p), nil
}

// expWarm benchmarks the allocation-free warm path: the generator pool
// against the pre-PR per-request cold build, and the byte-level HTTP warm
// lane against the cold-with-caches request path it short-circuits.
func expWarm() error {
	ctx := context.Background()
	window := 20 * time.Millisecond
	b := warmBench{
		GOMAXPROCS:           runtime.GOMAXPROCS(0),
		Reps:                 9,
		GenerateFloorSpeedup: math.Inf(1),
	}
	if dependSmoke {
		b.Reps, window = 3, 2*time.Millisecond
		b.Smoke = true
	}
	b.WindowNs = window.Nanoseconds()
	fmt.Printf("  GOMAXPROCS=%d, best of %d interleaved reps, >=%s/sample\n",
		b.GOMAXPROCS, b.Reps, window)

	// The expDepend/expWhatIf methodology: one sample = GC + untimed warm-up
	// + a calibrated batch of timed runs; variants interleave with
	// alternating order; the best repetition represents each variant; rank
	// testing decides whether a delta is signal at all.
	timeIt := func(batch int, f func() error) (int64, error) {
		runtime.GC()
		if err := f(); err != nil {
			return 0, err
		}
		start := time.Now()
		for j := 0; j < batch; j++ {
			if err := f(); err != nil {
				return 0, err
			}
		}
		return time.Since(start).Nanoseconds() / int64(batch), nil
	}
	benchPair := func(fast, slow func() error) (fastNs, slowNs int64, speedup float64, parity bool, runs int, err error) {
		calStart := time.Now()
		if err = slow(); err != nil {
			return
		}
		runs = min(max(int(window/max(time.Since(calStart), time.Microsecond)), 1), 512)
		fastNs, slowNs = math.MaxInt64, math.MaxInt64
		var fs, ss []int64
		for i := 0; i < b.Reps; i++ {
			first, second := fast, slow
			if i%2 == 1 {
				first, second = slow, fast
			}
			var d1, d2 int64
			if d1, err = timeIt(runs, first); err != nil {
				return
			}
			if d2, err = timeIt(runs, second); err != nil {
				return
			}
			df, ds := d1, d2
			if i%2 == 1 {
				df, ds = d2, d1
			}
			fastNs = min(fastNs, df)
			slowNs = min(slowNs, ds)
			fs = append(fs, df)
			ss = append(ss, ds)
		}
		if mannWhitneyDistinct(fs, ss) {
			speedup = math.Round(float64(slowNs)/float64(fastNs)*100) / 100
		} else {
			parity, speedup = true, 1
		}
		return
	}

	// --- Cold generate: fresh per-request build vs generator-pool reuse ---

	type genWorkload struct {
		name     string
		modelXML string
		diagram  string
		svcName  string
		mp       *mapping.Mapping
		opts     core.Options
	}
	var ws []genWorkload

	// The hand-modelled USI campus (Figures 5/9, Table I).
	usi, err := casestudy.BuildModel()
	if err != nil {
		return err
	}
	if _, err := casestudy.PrintingService(usi); err != nil {
		return err
	}
	var usiXML strings.Builder
	if err := uml.Encode(&usiXML, usi); err != nil {
		return err
	}
	ws = append(ws, genWorkload{
		name:     "usi-campus",
		modelXML: usiXML.String(),
		diagram:  casestudy.DiagramName,
		svcName:  casestudy.PrintingServiceName,
		mp:       casestudy.TableIMapping(),
		opts:     core.Options{},
	})

	// The k=8 fat-tree scatter scenario: a model an order of magnitude
	// larger, whose compiled kernel spans >2 bitset words, so import and
	// arena growth dominate the request.
	sc, err := modelgen.FatTreeScenario(8)
	if err != nil {
		return err
	}
	var scXML strings.Builder
	if err := uml.Encode(&scXML, sc.Model); err != nil {
		return err
	}
	ws = append(ws, genWorkload{
		name:     "fat-tree k=8 scatter",
		modelXML: scXML.String(),
		diagram:  sc.Diagram,
		svcName:  sc.Service,
		mp:       sc.Mapping,
		opts:     core.Options{Paths: sc.Paths},
	})

	fmt.Printf("  %-22s %8s %12s %12s %9s\n", "model", "xmlB", "fresh", "pooled", "speedup")
	pool := core.NewGeneratorPool(nil, 0, 0)
	generate := func(g *core.Generator, x *genWorkload) error {
		act, ok := g.Model().Activity(x.svcName)
		if !ok {
			return fmt.Errorf("model has no activity %q", x.svcName)
		}
		svc, err := service.FromActivity(act)
		if err != nil {
			return err
		}
		_, err = g.GenerateContext(ctx, svc, x.mp, "bench", x.opts)
		return err
	}
	for i := range ws {
		x := &ws[i]
		fresh := func() error {
			m, err := uml.Decode(strings.NewReader(x.modelXML))
			if err != nil {
				return err
			}
			g, err := core.NewGeneratorContext(ctx, m, x.diagram)
			if err != nil {
				return err
			}
			defer g.Close()
			return generate(g, x)
		}
		pooled := func() error {
			g, err := pool.Acquire(ctx, x.modelXML, x.diagram)
			if err != nil {
				return err
			}
			defer pool.Release(g)
			return generate(g, x)
		}
		w := warmGenWorkload{Model: x.name, XMLBytes: len(x.modelXML)}
		var err error
		if w.PooledNs, w.FreshNs, w.Speedup, w.Parity, w.RunsPerRep, err = benchPair(pooled, fresh); err != nil {
			return fmt.Errorf("%s: %w", x.name, err)
		}
		b.GenerateFloorSpeedup = min(b.GenerateFloorSpeedup, w.Speedup)
		b.Regression = b.Regression || (!w.Parity && w.Speedup < 1)
		b.Generate = append(b.Generate, w)
		fmt.Printf("  %-22s %8d %12s %12s %8.2fx\n", w.Model, w.XMLBytes,
			time.Duration(w.FreshNs), time.Duration(w.PooledNs), w.Speedup)
	}
	if math.IsInf(b.GenerateFloorSpeedup, 0) {
		b.GenerateFloorSpeedup = 0
	}
	fmt.Printf("  cold-generate floor: %.2fx (acceptance floor 3x)\n\n", b.GenerateFloorSpeedup)

	// --- Warm HTTP lane: repeated bytes vs byte-distinct cache hits ---

	var mappingXML bytes.Buffer
	if err := casestudy.TableIMapping().Encode(&mappingXML); err != nil {
		return err
	}
	h := server.New()
	fmt.Printf("  %-22s %10s %12s %14s %9s\n", "route", "allocs/op", "warm", "cold(cached)", "speedup")
	for _, route := range []string{"/api/v1/availability", "/api/v1/qos", "/api/v1/explain"} {
		req := map[string]any{
			"modelXml":   usiXML.String(),
			"diagram":    casestudy.DiagramName,
			"service":    casestudy.PrintingServiceName,
			"mappingXml": mappingXML.String(),
		}
		if route == "/api/v1/availability" {
			req["mcSamples"] = 2000
		}
		base, err := json.Marshal(req)
		if err != nil {
			return err
		}

		body := &warmReplayBody{}
		r := httptest.NewRequest(http.MethodPost, route, nil)
		r.Header.Set(server.RequestIDHeader, "bench")
		w := &warmNullWriter{h: make(http.Header)}
		serveWarm := func() error {
			body.r.Reset(base)
			r.Body = body
			h.ServeHTTP(w, r)
			if w.status != http.StatusOK {
				return fmt.Errorf("%s: status %d", route, w.status)
			}
			w.status = 0
			return nil
		}
		// JSON ignores trailing whitespace, so padding yields byte-distinct
		// requests with identical semantics: warm-lane misses that still hit
		// the result cache after decode + pool acquire.
		pad := 0
		serveCold := func() error {
			pad++
			body.r.Reset(append(append([]byte(nil), base...), bytes.Repeat([]byte{' '}, pad)...))
			r.Body = body
			h.ServeHTTP(w, r)
			if w.status != http.StatusOK {
				return fmt.Errorf("%s: status %d", route, w.status)
			}
			w.status = 0
			return nil
		}

		if err := serveWarm(); err != nil { // the one true cold compute
			return err
		}
		row := warmRouteRow{Route: route}
		row.AllocsPerOp = testing.AllocsPerRun(200, func() { _ = serveWarm() })
		var err2 error
		if row.WarmNs, row.ColdNs, row.Speedup, row.Parity, row.RunsPerRep, err2 = benchPair(serveWarm, serveCold); err2 != nil {
			return err2
		}
		if route != "/api/v1/explain" {
			b.MaxWarmAllocs = max(b.MaxWarmAllocs, row.AllocsPerOp)
		}
		b.Regression = b.Regression || (!row.Parity && row.Speedup < 1)
		b.Routes = append(b.Routes, row)
		fmt.Printf("  %-22s %10.1f %12s %14s %8.2fx\n", row.Route, row.AllocsPerOp,
			time.Duration(row.WarmNs), time.Duration(row.ColdNs), row.Speedup)
	}
	fmt.Printf("  max warm allocs/op (availability, qos): %.1f (acceptance ceiling 0)\n", b.MaxWarmAllocs)
	fmt.Printf("  Mann-Whitney-confirmed regression in any family: %t\n", b.Regression)

	if warmOut != "" {
		data, err := json.MarshalIndent(b, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(warmOut, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("  wrote %s\n", warmOut)
	}
	return nil
}
