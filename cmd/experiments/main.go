// Command experiments regenerates every table and figure of the paper's
// evaluation (see DESIGN.md, "Experiment index"): the profiles of Figures
// 6–7, the component classes of Figure 8, the infrastructure of Figures
// 5/9, the printing service of Figure 10, the Table I mapping and its
// Figure 3 XML form, the Section VI-G path listing, the UPSIMs of Figures
// 11–12, the Section VII availability analysis, and the extended scalability
// (Section V-D) and dynamicity (Section V-A3) studies.
//
// Usage:
//
//	experiments [-exp all|f3|f6|f7|f8|f9|f10|t1|paths|f11|f12|context|avail|rbd|qos|importance|sensitivity|cloud|scaling|dynamicity|cache|pathdisc|depend|whatif|warm|kbest]
//	            [-bench-out BENCH_cache.json] [-pathdisc-out BENCH_pathdisc.json]
//	            [-depend-out BENCH_depend.json] [-whatif-out BENCH_whatif.json]
//	            [-warm-out BENCH_warm.json] [-kbest-out BENCH_kbest.json] [-smoke]
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"upsim"
	"upsim/internal/casestudy"
	"upsim/internal/importers"
	"upsim/internal/modelgen"
	"upsim/internal/pathdisc"
	"upsim/internal/rbdgen"
	"upsim/internal/topology"
	"upsim/internal/uml"
)

func main() {
	exp := flag.String("exp", "all", "experiment id (all, f3, f6, f7, f8, f9, f10, t1, paths, f11, f12, context, avail, rbd, qos, importance, sensitivity, cloud, scaling, dynamicity, cache, pathdisc, depend, whatif, warm, kbest)")
	flag.StringVar(&benchOut, "bench-out", "BENCH_cache.json", "file for the cache experiment's JSON record (empty disables)")
	flag.StringVar(&pathdiscOut, "pathdisc-out", "BENCH_pathdisc.json", "file for the pathdisc experiment's JSON record (empty disables)")
	flag.StringVar(&dependOut, "depend-out", "BENCH_depend.json", "file for the depend experiment's JSON record (empty disables)")
	flag.StringVar(&whatifOut, "whatif-out", "BENCH_whatif.json", "file for the whatif experiment's JSON record (empty disables)")
	flag.StringVar(&warmOut, "warm-out", "BENCH_warm.json", "file for the warm experiment's JSON record (empty disables)")
	flag.StringVar(&kbestOut, "kbest-out", "BENCH_kbest.json", "file for the kbest experiment's JSON record (empty disables)")
	flag.BoolVar(&dependSmoke, "smoke", false, "shrink the depend, whatif, warm and kbest experiments to CI-sized sanity runs")
	flag.Parse()
	if err := run(*exp); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

type experiment struct {
	id    string
	title string
	fn    func() error
}

func experimentsList() []experiment {
	return []experiment{
		{"f6", "Figure 6 — availability profile", expF6},
		{"f7", "Figure 7 — network profile", expF7},
		{"f8", "Figure 8 — component classes", expF8},
		{"f9", "Figures 5/9 — infrastructure object diagram", expF9},
		{"f10", "Figure 10 — printing service activity", expF10},
		{"t1", "Table I — service mapping pairs", expT1},
		{"f3", "Figure 3 — mapping XML", expF3},
		{"context", "Figures 1/2/4 — pipeline context (model space after Steps 5-6)", expContext},
		{"paths", "Section VI-G — path discovery for the first pair", expPaths},
		{"f11", "Figure 11 — UPSIM for t1 → p2 via printS", expF11},
		{"f12", "Figure 12 — UPSIM for t15 → p3 via printS", expF12},
		{"avail", "Section VII — user-perceived availability analysis", expAvail},
		{"rbd", "Ref [20] — UPSIM → RBD model transformation", expRBD},
		{"qos", "Section VII — performability and responsiveness", expQoS},
		{"importance", "Extension — cut sets, bounds and importance for t1 → p2", expImportance},
		{"sensitivity", "Extension — class-level MTBF/MTTR sensitivity", expSensitivity},
		{"cloud", "§VIII future work — fat-tree cloud infrastructure", expCloud},
		{"scaling", "Section V-D — path discovery scalability", expScaling},
		{"dynamicity", "Section V-A3 — dynamicity scenarios", expDynamicity},
		{"cache", "Extension — content-addressed cache & concurrent discovery", expCache},
		{"pathdisc", "Extension — compiled CSR kernel vs map-based discovery", expPathdisc},
		{"depend", "Extension — compiled dependability kernel vs map-based analysis", expDepend},
		{"whatif", "Extension — live-topology patching vs cold recompilation", expWhatIf},
		{"warm", "Extension — allocation-free warm path vs per-request cold build", expWarm},
		{"kbest", "Extension — budgeted k-best discovery vs full enumeration", expKBest},
	}
}

func run(id string) error {
	for _, e := range experimentsList() {
		if id != "all" && id != e.id {
			continue
		}
		fmt.Printf("== %s: %s ==\n", e.id, e.title)
		if err := e.fn(); err != nil {
			return fmt.Errorf("%s: %w", e.id, err)
		}
		fmt.Println()
		if id == e.id {
			return nil
		}
	}
	if id != "all" {
		return fmt.Errorf("unknown experiment %q", id)
	}
	return nil
}

// base builds the case-study inputs shared by most experiments.
func base() (*upsim.Model, *upsim.Composite, *upsim.Generator, error) {
	m, err := upsim.USIModel()
	if err != nil {
		return nil, nil, nil, err
	}
	svc, err := upsim.USIPrintingService(m)
	if err != nil {
		return nil, nil, nil, err
	}
	gen, err := upsim.NewGenerator(m, upsim.USIDiagramName)
	if err != nil {
		return nil, nil, nil, err
	}
	return m, svc, gen, nil
}

func printProfile(p *upsim.Profile) {
	for _, st := range p.Stereotypes() {
		kind := "stereotype"
		if st.IsAbstract() {
			kind = "abstract stereotype"
		}
		ext := ""
		if st.Extends().String() != "None" {
			ext = " extends " + st.Extends().String()
		}
		parent := ""
		if st.Parent() != nil {
			parent = " : " + st.Parent().Name()
		}
		fmt.Printf("  <<%s>>%s (%s%s)\n", st.Name(), parent, kind, ext)
		for _, a := range st.OwnAttributes() {
			def := ""
			if !a.Default.IsZero() {
				def = " = " + a.Default.String()
			}
			fmt.Printf("      %s:%s%s\n", a.Name, a.Kind, def)
		}
	}
}

func expF6() error {
	p, err := casestudy.AvailabilityProfile()
	if err != nil {
		return err
	}
	printProfile(p)
	return nil
}

func expF7() error {
	p, err := casestudy.NetworkProfile()
	if err != nil {
		return err
	}
	printProfile(p)
	return nil
}

func expF8() error {
	m, err := upsim.USIModel()
	if err != nil {
		return err
	}
	fmt.Printf("  %-28s %10s %8s %10s %-12s %s\n", "class", "MTBF[h]", "MTTR[h]", "redundant", "manufacturer", "model")
	for _, c := range m.Classes() {
		mtbf, _ := c.Property("MTBF")
		mttr, _ := c.Property("MTTR")
		red, _ := c.Property("redundantComponents")
		man, _ := c.Property("manufacturer")
		mod, _ := c.Property("model")
		fmt.Printf("  %-28s %10s %8s %10s %-12s %s\n",
			c.String(), mtbf.String(), mttr.String(), red.String(), man.AsString(), mod.AsString())
	}
	return nil
}

func expF9() error {
	m, err := upsim.USIModel()
	if err != nil {
		return err
	}
	d, _ := m.Diagram(upsim.USIDiagramName)
	fmt.Printf("  %d instances, %d links\n", d.NumInstances(), d.NumLinks())
	byClass := map[string][]string{}
	for _, inst := range d.Instances() {
		cls := inst.Classifier().Name()
		byClass[cls] = append(byClass[cls], inst.Name())
	}
	classes := make([]string, 0, len(byClass))
	for c := range byClass {
		classes = append(classes, c)
	}
	sort.Strings(classes)
	for _, c := range classes {
		sort.Strings(byClass[c])
		fmt.Printf("  %-8s (%2d): %v\n", c, len(byClass[c]), byClass[c])
	}
	fmt.Println("  links:")
	for _, l := range d.Links() {
		a, b := l.Ends()
		fmt.Printf("    %s -- %s (%s)\n", a.Signature(), b.Signature(), l.Association().Name())
	}
	return nil
}

func expF10() error {
	m, err := upsim.USIModel()
	if err != nil {
		return err
	}
	svc, err := upsim.USIPrintingService(m)
	if err != nil {
		return err
	}
	fmt.Println("  composite service:", svc.Name())
	for i, stage := range svc.Stages() {
		fmt.Printf("  stage %d: %v\n", i+1, stage)
	}
	return nil
}

func expT1() error {
	fmt.Printf("  %-20s | %-8s | %-8s\n", "AS", "RQ", "PR")
	for _, p := range upsim.USITableIMapping().Pairs() {
		fmt.Printf("  %-20s | %-8s | %-8s\n", p.AtomicService, p.Requester, p.Provider)
	}
	return nil
}

func expF3() error {
	var buf bytes.Buffer
	if err := upsim.WriteMapping(&buf, upsim.USITableIMapping()); err != nil {
		return err
	}
	fmt.Println(buf.String())
	// Round trip.
	mp, err := upsim.ReadMapping(&buf)
	if err != nil {
		return err
	}
	fmt.Printf("  round trip: %d pairs parsed back\n", mp.Len())
	return nil
}

func expContext() error {
	_, svc, gen, err := base()
	if err != nil {
		return err
	}
	if _, err := gen.Generate(svc, upsim.USITableIMapping(), "ctx", upsim.Options{}); err != nil {
		return err
	}
	s := gen.Space()
	fmt.Printf("  model space after Steps 5-8: %d entities, %d relations\n",
		s.NumEntities(), s.NumRelations())
	for _, fqn := range []string{
		importers.NSUMLMetamodel, importers.NSMappingMetamodel,
		"models.usi.classes", "models.usi.associations",
		"models.usi.diagrams.infrastructure", "models.usi.activities.printing",
		"mappings", "paths.ctx",
	} {
		e, ok := s.Lookup(fqn)
		if !ok {
			return fmt.Errorf("namespace %q missing", fqn)
		}
		fmt.Printf("  %-40s %d children\n", fqn, len(e.Children()))
	}
	fmt.Printf("  link relations: %d, classifier relations: %d, flow relations: %d\n",
		len(s.Relations(importers.RelLink)),
		len(s.Relations(importers.RelClassifier)),
		len(s.Relations(importers.RelFlow)))
	return nil
}

func expPaths() error {
	_, _, gen, err := base()
	if err != nil {
		return err
	}
	paths, stats, err := upsim.AllPaths(gen.Graph(), "t1", "printS", upsim.PathOptions{})
	if err != nil {
		return err
	}
	fmt.Println("  all simple paths t1 → printS (first Table I pair):")
	for _, p := range paths {
		fmt.Println("   ", p)
	}
	fmt.Printf("  published in VI-G: %v\n", casestudy.ExamplePathsT1PrintS)
	fmt.Printf("  stats: %d paths, %d edge visits, max stack %d\n",
		stats.Paths, stats.EdgeVisits, stats.MaxStack)
	return nil
}

func upsimFigure(mp *upsim.Mapping, name string, want []string) error {
	_, svc, gen, err := base()
	if err != nil {
		return err
	}
	res, err := gen.Generate(svc, mp, name, upsim.Options{})
	if err != nil {
		return err
	}
	fmt.Printf("  generated UPSIM %q: %d components, %d links, %d discovered paths\n",
		name, res.Graph.NumNodes(), res.Graph.NumEdges(), res.TotalPaths)
	for _, inst := range res.UPSIM.Instances() {
		fmt.Println("   ", inst.Signature())
	}
	got := res.NodeNames()
	match := len(got) == len(want)
	if match {
		for i := range want {
			if got[i] != want[i] {
				match = false
				break
			}
		}
	}
	fmt.Printf("  matches paper node set: %v\n", match)
	return nil
}

func expF11() error {
	return upsimFigure(upsim.USITableIMapping(), "upsim-t1-p2", casestudy.Figure11Nodes)
}

func expF12() error {
	return upsimFigure(upsim.USIT15P3Mapping(), "upsim-t15-p3", casestudy.Figure12Nodes)
}

func expAvail() error {
	m, svc, gen, err := base()
	if err != nil {
		return err
	}
	// Per-class availability: exact vs Formula 1.
	fmt.Println("  per-class availability (Formula 1 vs exact):")
	fmt.Printf("  %-10s %10s %8s %14s %14s %12s\n", "class", "MTBF[h]", "MTTR[h]", "1-MTTR/MTBF", "MTBF/(MTBF+MTTR)", "delta")
	for _, c := range m.Classes() {
		mtbf, _ := c.Property("MTBF")
		mttr, _ := c.Property("MTTR")
		f1, err := upsim.AvailabilityFormula1(mtbf.AsReal(), mttr.AsReal())
		if err != nil {
			return err
		}
		ex, err := upsim.Availability(mtbf.AsReal(), mttr.AsReal())
		if err != nil {
			return err
		}
		fmt.Printf("  %-10s %10.0f %8.1f %14.8f %14.8f %12.3e\n",
			c.Name(), mtbf.AsReal(), mttr.AsReal(), f1, ex, ex-f1)
	}
	// Service availability for both published perspectives.
	fmt.Println("\n  user-perceived printing-service availability:")
	fmt.Printf("  %-12s %14s %14s %22s %12s\n", "perspective", "exact", "naive RBD", "Monte Carlo", "downtime/yr")
	for _, pc := range []struct {
		name string
		mp   *upsim.Mapping
	}{
		{"t1 → p2", upsim.USITableIMapping()},
		{"t15 → p3", upsim.USIT15P3Mapping()},
	} {
		res, err := gen.Generate(svc, pc.mp, "avail-"+pc.name, upsim.Options{})
		if err != nil {
			return err
		}
		rep, err := upsim.Analyze(res, upsim.ModelExact, 200000, 42)
		if err != nil {
			return err
		}
		fmt.Printf("  %-12s %14.10f %14.10f %12.6f ± %.6f %9.1f h\n",
			pc.name, rep.Exact, rep.RBDApprox, rep.MonteCarlo, rep.MCStdErr, rep.DowntimePerYearHours)
	}
	return nil
}

func expRBD() error {
	_, svc, gen, err := base()
	if err != nil {
		return err
	}
	res, err := gen.Generate(svc, upsim.USITableIMapping(), "rbd-demo", upsim.Options{})
	if err != nil {
		return err
	}
	avail := map[string]float64{}
	for _, inst := range res.Source.Instances() {
		mtbf, _ := inst.Property("MTBF")
		mttr, _ := inst.Property("MTTR")
		a, err := upsim.Availability(mtbf.AsReal(), mttr.AsReal())
		if err != nil {
			return err
		}
		avail[inst.Name()] = a
	}
	root, err := rbdgen.Transform(gen.Space(), "rbd-demo", avail)
	if err != nil {
		return err
	}
	block, err := rbdgen.ToBlock(root)
	if err != nil {
		return err
	}
	a, err := block.Availability()
	if err != nil {
		return err
	}
	fmt.Printf("  RBD model materialised at %q in the model space\n", rbdgen.RootFQN("rbd-demo"))
	fmt.Printf("  device-only RBD availability: %.10f (independence assumption)\n", a)
	fmt.Println("  structure (first atomic service):")
	for _, line := range strings.SplitN(rbdgen.Render(root), "\n", 16)[:15] {
		fmt.Println("   ", line)
	}
	return nil
}

func expQoS() error {
	_, svc, gen, err := base()
	if err != nil {
		return err
	}
	fmt.Println("  performability (widest-path throughput, Mbit/s) and responsiveness")
	fmt.Println("  (probability of delivery within a hop budget) per perspective:")
	fmt.Printf("  %-12s %12s %8s %16s %16s\n", "perspective", "throughput", "budget", "responsiveness", "availability")
	for _, pc := range []struct {
		name string
		mp   *upsim.Mapping
	}{
		{"t1 → p2", upsim.USITableIMapping()},
		{"t15 → p3", upsim.USIT15P3Mapping()},
	} {
		res, err := gen.Generate(svc, pc.mp, "qos-"+pc.name, upsim.Options{})
		if err != nil {
			return err
		}
		tp, err := upsim.AnalyzeThroughput(res)
		if err != nil {
			return err
		}
		for _, hops := range []int{4, 5, 8} {
			rr, err := upsim.AnalyzeResponsiveness(res, upsim.ModelExact, hops)
			if err != nil {
				return err
			}
			fmt.Printf("  %-12s %12.0f %8d %16.10f %16.10f (%d/%d paths)\n",
				pc.name, tp.Service, hops, rr.Responsiveness, rr.Availability,
				rr.PathsWithinBudget, rr.PathsTotal)
		}
	}
	fmt.Println("  (the 100 Mbit/s client/printer access ports bound the throughput;")
	fmt.Println("   tight hop budgets drop the redundant core detour first)")
	return nil
}

func expImportance() error {
	_, svc, gen, err := base()
	if err != nil {
		return err
	}
	res, err := gen.Generate(svc, upsim.USITableIMapping(), "imp", upsim.Options{})
	if err != nil {
		return err
	}
	st, avail, err := upsim.StructureOf(res, upsim.ModelExact)
	if err != nil {
		return err
	}
	exact, err := st.Exact(avail)
	if err != nil {
		return err
	}
	cuts, err := st.MinimalCutSets(0)
	if err != nil {
		return err
	}
	spofs := 0
	for _, k := range cuts {
		if len(k) == 1 {
			spofs++
		}
	}
	bounds, err := st.EsaryProschan(avail, 0)
	if err != nil {
		return err
	}
	fmt.Printf("  minimal cut sets: %d (%d single points of failure)\n", len(cuts), spofs)
	fmt.Printf("  Esary–Proschan: %.10f ≤ exact %.10f ≤ %.10f\n", bounds.Lower, exact, bounds.Upper)
	type row struct {
		comp string
		fv   float64
	}
	var rows []row
	for _, c := range st.Components() {
		fv, err := st.FussellVesely(avail, c)
		if err != nil {
			return err
		}
		rows = append(rows, row{c, fv})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].fv > rows[j].fv })
	fmt.Println("  Fussell–Vesely importance (top 5):")
	for i, r := range rows {
		if i >= 5 {
			break
		}
		fmt.Printf("    %-22s %.4f\n", r.comp, r.fv)
	}
	for _, scenario := range []struct {
		label  string
		forced map[string]bool
	}{
		{"core c1 down", map[string]bool{"c1": false}},
		{"client t1 perfect", map[string]bool{"t1": true}},
	} {
		a, err := st.WhatIf(avail, scenario.forced)
		if err != nil {
			return err
		}
		fmt.Printf("  what-if %-18s -> %.8f (Δ%+.2e)\n", scenario.label, a, a-exact)
	}
	return nil
}

func expSensitivity() error {
	_, svc, gen, err := base()
	if err != nil {
		return err
	}
	res, err := gen.Generate(svc, upsim.USITableIMapping(), "sens", upsim.Options{})
	if err != nil {
		return err
	}
	rep, err := upsim.AnalyzeSensitivity(res)
	if err != nil {
		return err
	}
	fmt.Println("  availability gained per hour of class-wide MTBF improvement")
	fmt.Println("  (and lost per hour of MTTR increase), t1 → p2 perspective:")
	fmt.Printf("  %-22s %10s %14s %14s\n", "class/association", "instances", "dA/dMTBF[1/h]", "dA/dMTTR[1/h]")
	for _, cs := range rep.Classes {
		fmt.Printf("  %-22s %10d %14.3e %14.3e\n", cs.Class, cs.Instances, cs.DAvailDMTBF, cs.DAvailDMTTR)
	}
	fmt.Println("  (upgrading the Comp client class pays ~5 orders of magnitude more")
	fmt.Println("   than any switch class — the user-perceived view prices upgrades)")
	return nil
}

func expCloud() error {
	start := time.Now()
	g, err := topology.FatTree(4)
	if err != nil {
		return err
	}
	m, err := modelgen.Build("cloud", g, modelgen.Params{
		Classes: map[string]modelgen.ClassParams{
			"Host": {MTBF: 20000, MTTR: 4},
			"Core": {MTBF: 61320, MTTR: 0.5},
		},
	})
	if err != nil {
		return err
	}
	svc, err := upsim.NewSequentialService(m, "vm-to-storage", "write", "ack")
	if err != nil {
		return err
	}
	mp := upsim.NewMapping()
	if err := mp.Add(upsim.Pair{AtomicService: "write", Requester: "h0-0-0", Provider: "h3-1-1"}); err != nil {
		return err
	}
	if err := mp.Add(upsim.Pair{AtomicService: "ack", Requester: "h3-1-1", Provider: "h0-0-0"}); err != nil {
		return err
	}
	gen, err := upsim.NewGenerator(m, "infrastructure")
	if err != nil {
		return err
	}
	res, err := gen.Generate(svc, mp, "cloud-upsim", upsim.Options{
		Paths: upsim.PathOptions{MaxDepth: 6}, // valley-free up-down routes
	})
	if err != nil {
		return err
	}
	rep, err := upsim.Analyze(res, upsim.ModelExact, 50000, 1)
	if err != nil {
		return err
	}
	fmt.Printf("  fat-tree k=4 (%d nodes, %d links), cross-pod host pair, hop budget 6\n",
		g.NumNodes(), g.NumEdges())
	paths, _ := res.PathsFor("write")
	fmt.Printf("  UPSIM: %d components, %d links; %d valley-free paths/direction\n",
		res.Graph.NumNodes(), res.Graph.NumEdges(), len(paths))
	fmt.Printf("  availability: exact %.8f, naive RBD %.8f (Δ=%.2e)\n",
		rep.Exact, rep.RBDApprox, rep.RBDApprox-rep.Exact)
	fmt.Printf("  end-to-end model synthesis + generation + analysis: %s\n",
		time.Since(start).Round(time.Millisecond))
	fmt.Println("  (the same pipeline, unchanged, on a generated data-center topology —")
	fmt.Println("   the paper's deferred cloud-computing applicability demonstrated)")
	return nil
}

func expScaling() error {
	fmt.Println("  all-simple-paths discovery effort by topology shape (Section V-D):")
	fmt.Printf("  %-22s %7s %7s %10s %12s %12s\n", "topology", "nodes", "edges", "paths", "edge visits", "time")
	type tc struct {
		name string
		g    *topology.Graph
		src  string
		dst  string
	}
	var cases []tc
	for _, depth := range []int{4, 6, 8} {
		g, err := topology.Tree(2, depth)
		if err != nil {
			return err
		}
		last := fmt.Sprintf("n%d", g.NumNodes()-1)
		cases = append(cases, tc{fmt.Sprintf("tree fanout=2 depth=%d", depth), g, "n0", last})
	}
	for _, edges := range []int{4, 8, 16} {
		g, err := topology.Campus(topology.CampusParams{
			EdgeSwitches: edges, ClientsPerEdge: 3, ServersPerSwitch: 3, RedundantCore: true,
		})
		if err != nil {
			return err
		}
		cases = append(cases, tc{fmt.Sprintf("campus edges=%d", edges), g, "t1", "srv1"})
	}
	for _, p := range []float64{0.02, 0.04, 0.06} {
		g, err := topology.RandomConnected(30, p, 1)
		if err != nil {
			return err
		}
		cases = append(cases, tc{fmt.Sprintf("random n=30 loops=%.2f", p), g, "n0", "n29"})
	}
	for _, k := range []int{4, 6} {
		g, err := topology.FatTree(k)
		if err != nil {
			return err
		}
		half := k / 2
		cases = append(cases, tc{fmt.Sprintf("fat-tree k=%d", k), g,
			"h0-0-0", fmt.Sprintf("h%d-%d-%d", k-1, half-1, half-1)})
	}
	for _, n := range []int{6, 8, 10} {
		g, err := topology.Mesh(n)
		if err != nil {
			return err
		}
		cases = append(cases, tc{fmt.Sprintf("mesh n=%d (O(n!) case)", n), g, "n0", fmt.Sprintf("n%d", n-1)})
	}
	// Count without storing: dense instances can hold astronomically many
	// simple paths, and the point of the study is the growth trend, not an
	// exhaustive store. A generous cap keeps the harness bounded.
	const pathCap = 500_000
	for _, c := range cases {
		start := time.Now()
		count, stats, err := pathdisc.CountPaths(c.g, c.src, c.dst, pathdisc.Options{MaxPaths: pathCap})
		if err != nil {
			return err
		}
		rendered := fmt.Sprintf("%d", count)
		if stats.Truncated {
			rendered = fmt.Sprintf(">=%d", pathCap)
		}
		fmt.Printf("  %-22s %7d %7d %10s %12d %12s\n",
			c.name, c.g.NumNodes(), c.g.NumEdges(), rendered, stats.EdgeVisits,
			time.Since(start).Round(time.Microsecond))
	}
	fmt.Println("  (trees: exactly 1 path; campus: few paths independent of size;")
	fmt.Println("   meshes: factorial growth — the motivation for tree-like real networks)")
	return nil
}

func expDynamicity() error {
	m, svc, gen, err := base()
	if err != nil {
		return err
	}
	fmt.Println("  which model changes per scenario (Section V-A3), with regeneration cost:")
	fmt.Printf("  %-26s %-9s %-9s %-9s %12s\n", "scenario", "network", "service", "mapping", "regen time")

	timeGen := func(name string, mp *upsim.Mapping, s *upsim.Composite, g *upsim.Generator) (time.Duration, error) {
		start := time.Now()
		if _, err := g.Generate(s, mp, name, upsim.Options{}); err != nil {
			return 0, err
		}
		return time.Since(start), nil
	}

	// 1. Mobility: the user moves t1 → t6; only the mapping changes.
	baseline, err := gen.Generate(svc, upsim.USITableIMapping(), "dyn-base", upsim.Options{})
	if err != nil {
		return err
	}
	mob := upsim.USITableIMapping().Clone()
	if _, err := mob.RemapComponent("t1", "t6"); err != nil {
		return err
	}
	start := time.Now()
	mobRes, err := gen.Generate(svc, mob, "dyn-mobility", upsim.Options{})
	if err != nil {
		return err
	}
	d1 := time.Since(start)
	fmt.Printf("  %-26s %-9s %-9s %-9s %12s\n", "user mobility (t1→t6)", "-", "-", "changed", d1.Round(time.Microsecond))
	diff, err := upsim.CompareResults(baseline, mobRes)
	if err != nil {
		return err
	}
	fmt.Printf("    perceived-infrastructure diff: %s\n", diff)

	// 2. Service migration: printS moves to file2; only the mapping changes.
	mig := upsim.USITableIMapping().Clone()
	if _, err := mig.RemapComponent("printS", "file2"); err != nil {
		return err
	}
	d2, err := timeGen("dyn-migration", mig, svc, gen)
	if err != nil {
		return err
	}
	fmt.Printf("  %-26s %-9s %-9s %-9s %12s\n", "service migration", "-", "-", "changed", d2.Round(time.Microsecond))

	// 3. Topology change: a new client joins; network model and mapping
	// change, service description untouched.
	d, _ := m.Diagram(upsim.USIDiagramName)
	comp := m.MustClass("Comp")
	newClient, err := d.AddInstance("t16", comp)
	if err != nil {
		return err
	}
	e4, _ := d.Instance("e4")
	assoc, _ := m.AssociationBetween(comp, m.MustClass("HP2650"))
	if _, err := d.Connect(newClient, e4, assoc); err != nil {
		return err
	}
	gen2, err := upsim.NewGenerator(m, upsim.USIDiagramName) // re-import (Step 5) after topology change
	if err != nil {
		return err
	}
	topo := upsim.USITableIMapping().Clone()
	if _, err := topo.RemapComponent("t1", "t16"); err != nil {
		return err
	}
	d3, err := timeGen("dyn-topology", topo, svc, gen2)
	if err != nil {
		return err
	}
	fmt.Printf("  %-26s %-9s %-9s %-9s %12s\n", "topology change (+t16)", "changed", "-", "changed", d3.Round(time.Microsecond))

	// 4. Service substitution: a re-described printing service (different
	// composition, same function) plus mapping; network untouched.
	alt, err := upsim.NewSequentialService(m, "printing-v2",
		"Request printing", "Send documents")
	if err != nil {
		return err
	}
	sub := upsim.NewMapping()
	if err := sub.Add(upsim.Pair{AtomicService: "Request printing", Requester: "t1", Provider: "printS"}); err != nil {
		return err
	}
	if err := sub.Add(upsim.Pair{AtomicService: "Send documents", Requester: "printS", Provider: "p2"}); err != nil {
		return err
	}
	d4, err := timeGen("dyn-substitution", sub, alt, gen2)
	if err != nil {
		return err
	}
	fmt.Printf("  %-26s %-9s %-9s %-9s %12s\n", "service substitution", "-", "changed", "changed", d4.Round(time.Microsecond))
	return nil
}

// silence unused-import on uml when experiments are trimmed.
var _ = uml.KindReal
