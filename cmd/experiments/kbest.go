package main

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"runtime"
	"testing"
	"time"

	"upsim/internal/pathdisc"
	"upsim/internal/topology"
)

// kbestOut is where expKBest writes its machine-readable record; empty skips
// the file. main sets it from -kbest-out. The experiment shares the -smoke
// switch (dependSmoke) with expDepend/expWhatIf/expWarm.
var kbestOut string

// kbestHardLimit mirrors the server's enumeration hard limit
// (internal/server pathsHardLimit): the path count beyond which full
// enumeration is a structured 422, not an answer. The smoke run shrinks it
// so the "infeasible" workload trips in milliseconds instead of seconds.
const kbestHardLimit = 1 << 20

// kbestWorkload is one row of the enumeration-vs-ranked comparison. On
// feasible topologies both variants complete and the row carries a
// Mann-Whitney-gated speedup; on the infeasible topology enumeration trips
// the hard limit (EnumTripped) and EnumNs records the single run that
// proved it, while the ranked search still completes under KBestNs.
type kbestWorkload struct {
	Topology    string  `json:"topology"`
	Nodes       int     `json:"nodes"`
	Edges       int     `json:"edges"`
	CostMetric  string  `json:"costMetric"`
	K           int     `json:"k"`
	EnumPaths   int     `json:"enumPaths,omitempty"`
	EnumTripped bool    `json:"enumTripped,omitempty"`
	EnumNs      int64   `json:"enumNs"`
	KBestNs     int64   `json:"kbestNs"`
	KBestAllocs float64 `json:"kbestAllocsPerOp"`
	TopCost     float64 `json:"topCost"`
	Speedup     float64 `json:"speedup,omitempty"`
	Parity      bool    `json:"parity,omitempty"`
	RunsPerRep  int     `json:"runsPerRep"`
}

// kbestBudgetProbe records the structured limit error produced when the
// K·V·E work estimate exceeds Options.MaxWork — the same kind/need/limit
// triple the server surfaces as a 422 budget error on /api/v1/paths.
type kbestBudgetProbe struct {
	Kind  string `json:"kind"`
	Need  int    `json:"need"`
	Limit int    `json:"limit"`
}

// kbestBench is the BENCH_kbest.json schema. KBestBoundNs is the worst
// ranked-search latency across all workloads — the measured bound that
// holds even where enumeration trips the hard limit. Regression flags any
// Mann-Whitney-confirmed feasible workload where ranked discovery is
// slower than full enumeration.
type kbestBench struct {
	GOMAXPROCS            int              `json:"gomaxprocs"`
	Reps                  int              `json:"repsPerVariant"`
	WindowNs              int64            `json:"minSampleWindowNs"`
	HardMaxPaths          int              `json:"hardMaxPaths"`
	Smoke                 bool             `json:"smoke,omitempty"`
	Workloads             []kbestWorkload  `json:"workloads"`
	InfeasibleEnumTripped bool             `json:"infeasibleEnumTripped"`
	KBestBoundNs          int64            `json:"kbestLatencyBoundNs"`
	BudgetProbe           kbestBudgetProbe `json:"workBudgetProbe"`
	Regression            bool             `json:"regression"`
}

// expKBest benchmarks budgeted ranked discovery against full enumeration:
// on feasible meshes k-best must beat enumerate-then-rank outright, and on
// a mesh whose simple-path count exceeds the hard limit it must complete
// under a measured bound while enumeration can only return the structured
// limit error (the bounded-latency claim of the ranked mode).
func expKBest() error {
	const k = 5
	window := 20 * time.Millisecond
	hardLimit := kbestHardLimit
	b := kbestBench{
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Reps:       9,
	}
	// Full-size: mesh n=12 holds ~9.9M simple paths between any pair, well
	// past the 2^20 hard limit; n=8 and n=10 (1,957 and 109,601 paths) stay
	// enumerable and carry the statistical comparison. Smoke shrinks both
	// the meshes and the hard limit so CI proves the harness, not the bound.
	feasible := []struct {
		n      int
		metric string
	}{{8, "hops"}, {10, "throughput"}}
	infeasibleN := 12
	if dependSmoke {
		b.Reps, window = 3, 2*time.Millisecond
		b.Smoke = true
		hardLimit = 1 << 10
		feasible = []struct {
			n      int
			metric string
		}{{6, "hops"}, {6, "throughput"}}
		infeasibleN = 8
	}
	b.WindowNs = window.Nanoseconds()
	b.HardMaxPaths = hardLimit
	fmt.Printf("  GOMAXPROCS=%d, best of %d interleaved reps, >=%s/sample, hard limit %d paths\n",
		b.GOMAXPROCS, b.Reps, window, hardLimit)

	// The expPathdisc/expWarm methodology: one sample = GC + untimed warm-up
	// + a calibrated batch of timed runs; variants interleave with
	// alternating order; the best repetition represents each variant; rank
	// testing decides whether a delta is signal at all.
	timeIt := func(batch int, f func() error) (int64, error) {
		runtime.GC()
		if err := f(); err != nil {
			return 0, err
		}
		start := time.Now()
		for j := 0; j < batch; j++ {
			if err := f(); err != nil {
				return 0, err
			}
		}
		return time.Since(start).Nanoseconds() / int64(batch), nil
	}
	benchPair := func(fast, slow func() error) (fastNs, slowNs int64, speedup float64, parity bool, runs int, err error) {
		calStart := time.Now()
		if err = slow(); err != nil {
			return
		}
		runs = min(max(int(window/max(time.Since(calStart), time.Microsecond)), 1), 512)
		fastNs, slowNs = math.MaxInt64, math.MaxInt64
		var fs, ss []int64
		for i := 0; i < b.Reps; i++ {
			first, second := fast, slow
			if i%2 == 1 {
				first, second = slow, fast
			}
			var d1, d2 int64
			if d1, err = timeIt(runs, first); err != nil {
				return
			}
			if d2, err = timeIt(runs, second); err != nil {
				return
			}
			df, ds := d1, d2
			if i%2 == 1 {
				df, ds = d2, d1
			}
			fastNs = min(fastNs, df)
			slowNs = min(slowNs, ds)
			fs = append(fs, df)
			ss = append(ss, ds)
		}
		if mannWhitneyDistinct(fs, ss) {
			speedup = math.Round(float64(slowNs)/float64(fastNs)*100) / 100
		} else {
			parity, speedup = true, 1
		}
		return
	}

	// compileCosted builds the CSR kernel with a deterministic synthetic
	// stereotype cost view: edge i carries 10+(7i mod 23) Mbps, the same
	// varied-throughput shape the model-backed view resolves from link
	// attributes, without needing a UML model around the raw topology.
	compileCosted := func(g *topology.Graph) *pathdisc.Compiled {
		c := pathdisc.Compile(g)
		c.SetEdgeCosts(func(edgeID int) (float64, bool) {
			return 10 + float64((edgeID*7)%23), true
		})
		return c
	}

	fmt.Printf("  %-12s %-10s %2s %9s %14s %12s %9s\n",
		"topology", "metric", "k", "paths", "enumerate", "k-best", "speedup")

	// --- Feasible meshes: both variants complete; rank-test the delta ---
	for _, x := range feasible {
		g, err := topology.Mesh(x.n)
		if err != nil {
			return err
		}
		c := compileCosted(g)
		metric, err := pathdisc.ParseCostMetric(x.metric)
		if err != nil {
			return err
		}
		src, dst := "n0", fmt.Sprintf("n%d", x.n-1)
		enumOpts := pathdisc.Options{HardMaxPaths: hardLimit}
		rankOpts := pathdisc.Options{K: k, CostMetric: metric}
		paths, _, err := c.AllPaths(src, dst, enumOpts)
		if err != nil {
			return err
		}
		ranked, _, err := c.KShortest(src, dst, rankOpts)
		if err != nil {
			return err
		}
		w := kbestWorkload{
			Topology:   fmt.Sprintf("mesh n=%d", x.n),
			Nodes:      g.NumNodes(),
			Edges:      g.NumEdges(),
			CostMetric: x.metric,
			K:          k,
			EnumPaths:  len(paths),
			TopCost:    c.PathCost(metric, ranked[0]),
		}
		w.KBestAllocs = testing.AllocsPerRun(3, func() {
			_, _, _ = c.KShortest(src, dst, rankOpts)
		})
		enum := func() error { _, _, err := c.AllPaths(src, dst, enumOpts); return err }
		rank := func() error { _, _, err := c.KShortest(src, dst, rankOpts); return err }
		if w.KBestNs, w.EnumNs, w.Speedup, w.Parity, w.RunsPerRep, err = benchPair(rank, enum); err != nil {
			return fmt.Errorf("%s: %w", w.Topology, err)
		}
		b.Regression = b.Regression || (!w.Parity && w.Speedup < 1)
		b.KBestBoundNs = max(b.KBestBoundNs, w.KBestNs)
		b.Workloads = append(b.Workloads, w)
		fmt.Printf("  %-12s %-10s %2d %9d %14s %12s %8.2fx\n",
			w.Topology, w.CostMetric, w.K, w.EnumPaths,
			time.Duration(w.EnumNs), time.Duration(w.KBestNs), w.Speedup)
	}

	// --- Infeasible mesh: enumeration trips the hard limit, k-best holds ---
	g, err := topology.Mesh(infeasibleN)
	if err != nil {
		return err
	}
	c := compileCosted(g)
	src, dst := "n0", fmt.Sprintf("n%d", infeasibleN-1)
	rankOpts := pathdisc.Options{K: k, CostMetric: pathdisc.CostThroughput}
	w := kbestWorkload{
		Topology:   fmt.Sprintf("mesh n=%d", infeasibleN),
		Nodes:      g.NumNodes(),
		Edges:      g.NumEdges(),
		CostMetric: "throughput",
		K:          k,
	}
	// One timed enumeration attempt: it must abort with the structured
	// limit error once path count passes the hard limit, so a single run —
	// not a calibrated batch — is both sufficient and all one can afford.
	start := time.Now()
	_, _, enumErr := c.AllPaths(src, dst, pathdisc.Options{HardMaxPaths: hardLimit})
	w.EnumNs = time.Since(start).Nanoseconds()
	le, tripped := pathdisc.AsLimitError(enumErr)
	if !tripped {
		return fmt.Errorf("%s: enumeration did not trip the hard limit (err=%v)", w.Topology, enumErr)
	}
	if le.BudgetKind() != pathdisc.LimitPaths {
		return fmt.Errorf("%s: limit kind = %q, want %q", w.Topology, le.BudgetKind(), pathdisc.LimitPaths)
	}
	w.EnumTripped, b.InfeasibleEnumTripped = true, true
	ranked, _, err := c.KShortest(src, dst, rankOpts)
	if err != nil {
		return err
	}
	w.TopCost = c.PathCost(pathdisc.CostThroughput, ranked[0])
	w.KBestAllocs = testing.AllocsPerRun(3, func() {
		_, _, _ = c.KShortest(src, dst, rankOpts)
	})
	calStart := time.Now()
	if _, _, err := c.KShortest(src, dst, rankOpts); err != nil {
		return err
	}
	w.RunsPerRep = min(max(int(window/max(time.Since(calStart), time.Microsecond)), 1), 512)
	w.KBestNs = math.MaxInt64
	for i := 0; i < b.Reps; i++ {
		d, err := timeIt(w.RunsPerRep, func() error {
			_, _, err := c.KShortest(src, dst, rankOpts)
			return err
		})
		if err != nil {
			return err
		}
		w.KBestNs = min(w.KBestNs, d)
	}
	b.KBestBoundNs = max(b.KBestBoundNs, w.KBestNs)
	b.Workloads = append(b.Workloads, w)
	fmt.Printf("  %-12s %-10s %2d %9s %14s %12s %9s\n",
		w.Topology, w.CostMetric, w.K, fmt.Sprintf(">%d", hardLimit),
		"tripped "+time.Duration(w.EnumNs).Round(time.Millisecond).String(),
		time.Duration(w.KBestNs), "—")

	// --- Work-budget probe: the structured kbest limit error, end to end ---
	_, _, budgetErr := c.KShortest(src, dst, pathdisc.Options{K: k, MaxWork: 1})
	ble, ok := pathdisc.AsLimitError(budgetErr)
	if !ok || ble.BudgetKind() != pathdisc.LimitKBest {
		return fmt.Errorf("MaxWork=1 produced %v, want a %q limit error", budgetErr, pathdisc.LimitKBest)
	}
	b.BudgetProbe = kbestBudgetProbe{Kind: ble.BudgetKind(), Need: ble.Need, Limit: ble.Limit}

	fmt.Printf("  enumeration tripped hard limit on mesh n=%d: %t\n", infeasibleN, b.InfeasibleEnumTripped)
	fmt.Printf("  k-best latency bound across workloads: %s (k=%d)\n", time.Duration(b.KBestBoundNs), k)
	fmt.Printf("  work budget probe: kind=%s need=%d limit=%d\n",
		b.BudgetProbe.Kind, b.BudgetProbe.Need, b.BudgetProbe.Limit)
	fmt.Printf("  Mann-Whitney-confirmed regression in any family: %t\n", b.Regression)

	if kbestOut != "" {
		data, err := json.MarshalIndent(b, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(kbestOut, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("  wrote %s\n", kbestOut)
	}
	return nil
}
