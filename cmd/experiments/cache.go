package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sync"
	"time"

	"upsim"
)

// benchOut is where expCache writes its machine-readable record; empty (the
// test default) skips the file. main sets it from -bench-out.
var benchOut string

// cacheBench is the BENCH_cache.json schema (all durations in nanoseconds;
// see EXPERIMENTS.md for recorded numbers).
type cacheBench struct {
	CaseStudy         string  `json:"caseStudy"`
	ColdReps          int     `json:"coldReps"`
	ColdNs            int64   `json:"coldNs"`
	WarmReps          int     `json:"warmReps"`
	WarmNs            int64   `json:"warmNs"`
	Speedup           float64 `json:"speedup"`
	SequentialNs      int64   `json:"sequentialNs"`
	ConcurrentNs      int64   `json:"concurrentNs"`
	DiscoverySpeedup  float64 `json:"discoverySpeedup"`
	Goroutines        int     `json:"goroutines"`
	SingleflightMiss  uint64  `json:"singleflightMisses"`
	SingleflightReuse uint64  `json:"singleflightReused"`
}

// expCache measures the tentpole of this growth step on the USI case study:
// cold vs warm generation through the content-addressed cache, sequential vs
// concurrent Step 7 discovery, and singleflight deduplication under
// concurrent identical requests.
func expCache() error {
	mp := upsim.USITableIMapping()
	b := cacheBench{CaseStudy: "usi-printing (Table I, t1 → p2)", ColdReps: 10, WarmReps: 200, Goroutines: 16}

	// Cold: a fresh generator + cache per repetition, so every run pays the
	// full pipeline (Steps 6–8).
	var coldTotal time.Duration
	for i := 0; i < b.ColdReps; i++ {
		_, svc, gen, err := base()
		if err != nil {
			return err
		}
		gen.WithCache(upsim.NewCache(64))
		start := time.Now()
		if _, err := gen.Generate(svc, mp, "bench", upsim.Options{}); err != nil {
			return err
		}
		coldTotal += time.Since(start)
	}
	b.ColdNs = coldTotal.Nanoseconds() / int64(b.ColdReps)

	// Warm: one cached generator, repeated identical requests — the steady
	// state of a daemon serving a hot (model, service, mapping) tuple.
	_, svc, gen, err := base()
	if err != nil {
		return err
	}
	gen.WithCache(upsim.NewCache(64))
	if _, err := gen.Generate(svc, mp, "bench", upsim.Options{}); err != nil {
		return err
	}
	start := time.Now()
	for i := 0; i < b.WarmReps; i++ {
		if _, err := gen.Generate(svc, mp, "bench", upsim.Options{}); err != nil {
			return err
		}
	}
	b.WarmNs = time.Since(start).Nanoseconds() / int64(b.WarmReps)
	b.Speedup = float64(b.ColdNs) / float64(b.WarmNs)

	// Sequential vs concurrent Step 7 discovery (no cache; distinct UPSIM
	// names keep every run computing).
	discover := func(workers int, label string) (int64, error) {
		_, svc, gen, err := base()
		if err != nil {
			return 0, err
		}
		const reps = 50
		start := time.Now()
		for i := 0; i < reps; i++ {
			opts := upsim.Options{DiscoveryWorkers: workers}
			if _, err := gen.Generate(svc, mp, fmt.Sprintf("%s-%d", label, i), opts); err != nil {
				return 0, err
			}
		}
		return time.Since(start).Nanoseconds() / reps, nil
	}
	if b.SequentialNs, err = discover(1, "seq"); err != nil {
		return err
	}
	if b.ConcurrentNs, err = discover(0, "conc"); err != nil {
		return err
	}
	b.DiscoverySpeedup = float64(b.SequentialNs) / float64(b.ConcurrentNs)

	// Singleflight: concurrent identical requests against a cold cache
	// compute exactly once.
	_, svc, gen, err = base()
	if err != nil {
		return err
	}
	c := upsim.NewCache(64)
	gen.WithCache(c)
	var wg sync.WaitGroup
	for i := 0; i < b.Goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, _ = gen.Generate(svc, mp, "flight", upsim.Options{})
		}()
	}
	wg.Wait()
	s := c.Stats()
	b.SingleflightMiss = s.Misses
	b.SingleflightReuse = s.Hits + s.Shared

	fmt.Printf("  cold generate (pipeline):   %s   (mean of %d fresh runs)\n", time.Duration(b.ColdNs), b.ColdReps)
	fmt.Printf("  warm generate (cache hit):  %s   (mean of %d repeats)\n", time.Duration(b.WarmNs), b.WarmReps)
	fmt.Printf("  warm speedup: %.0fx\n", b.Speedup)
	fmt.Printf("  step 7 discovery, sequential (workers=1): %s/generate\n", time.Duration(b.SequentialNs))
	fmt.Printf("  step 7 discovery, concurrent (auto):      %s/generate (%.2fx)\n",
		time.Duration(b.ConcurrentNs), b.DiscoverySpeedup)
	fmt.Printf("  singleflight: %d goroutines, %d computed, %d reused\n",
		b.Goroutines, b.SingleflightMiss, b.SingleflightReuse)
	fmt.Println("  (the USI diamond is tiny, so pool wins are modest here; the cache")
	fmt.Println("   win is structural — a hash lookup replaces the whole pipeline)")

	if benchOut != "" {
		data, err := json.MarshalIndent(b, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(benchOut, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("  wrote %s\n", benchOut)
	}
	return nil
}
