package main

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"sync"
	"time"

	"upsim"
)

// benchOut is where expCache writes its machine-readable record; empty (the
// test default) skips the file. main sets it from -bench-out.
var benchOut string

// cacheBench is the BENCH_cache.json schema (all durations in nanoseconds;
// see EXPERIMENTS.md for recorded numbers).
type cacheBench struct {
	CaseStudy        string  `json:"caseStudy"`
	ColdReps         int     `json:"coldReps"`
	ColdNs           int64   `json:"coldNs"`
	WarmReps         int     `json:"warmReps"`
	WarmNs           int64   `json:"warmNs"`
	Speedup          float64 `json:"speedup"`
	SequentialNs     int64   `json:"sequentialNs"`
	ConcurrentNs     int64   `json:"concurrentNs"`
	DiscoverySpeedup float64 `json:"discoverySpeedup"`
	// DiscoveryParity is true when the sequential and concurrent sample sets
	// are statistically indistinguishable (Mann-Whitney U, alpha 0.05; see
	// mannWhitneyDistinct), in which case DiscoverySpeedup is reported as
	// exactly 1. On a single-core box auto concurrency resolves to the same
	// inline loop as workers=1, so parity is the expected verdict there.
	DiscoveryParity bool `json:"discoveryParity"`
	// Regression flags DiscoverySpeedup < 1 explicitly, so a concurrent
	// discovery path that is slower than the sequential loop can never again
	// hide as just another number in the record (PR 3 recorded 0.96 silently).
	Regression        bool   `json:"regression"`
	Goroutines        int    `json:"goroutines"`
	SingleflightMiss  uint64 `json:"singleflightMisses"`
	SingleflightReuse uint64 `json:"singleflightReused"`
}

// expCache measures the tentpole of this growth step on the USI case study:
// cold vs warm generation through the content-addressed cache, sequential vs
// concurrent Step 7 discovery, and singleflight deduplication under
// concurrent identical requests.
func expCache() error {
	mp := upsim.USITableIMapping()
	b := cacheBench{CaseStudy: "usi-printing (Table I, t1 → p2)", ColdReps: 10, WarmReps: 200, Goroutines: 16}

	// Cold: a fresh generator + cache per repetition, so every run pays the
	// full pipeline (Steps 6–8).
	var coldTotal time.Duration
	for i := 0; i < b.ColdReps; i++ {
		_, svc, gen, err := base()
		if err != nil {
			return err
		}
		gen.WithCache(upsim.NewCache(64))
		start := time.Now()
		if _, err := gen.Generate(svc, mp, "bench", upsim.Options{}); err != nil {
			return err
		}
		coldTotal += time.Since(start)
	}
	b.ColdNs = coldTotal.Nanoseconds() / int64(b.ColdReps)

	// Warm: one cached generator, repeated identical requests — the steady
	// state of a daemon serving a hot (model, service, mapping) tuple.
	_, svc, gen, err := base()
	if err != nil {
		return err
	}
	gen.WithCache(upsim.NewCache(64))
	if _, err := gen.Generate(svc, mp, "bench", upsim.Options{}); err != nil {
		return err
	}
	start := time.Now()
	for i := 0; i < b.WarmReps; i++ {
		if _, err := gen.Generate(svc, mp, "bench", upsim.Options{}); err != nil {
			return err
		}
	}
	b.WarmNs = time.Since(start).Nanoseconds() / int64(b.WarmReps)
	b.Speedup = float64(b.ColdNs) / float64(b.WarmNs)

	// Sequential vs concurrent Step 7 discovery (no cache; distinct UPSIM
	// names keep every run computing). The configurations are measured
	// interleaved — one batched sequential sample, then one batched
	// concurrent sample, repeated, with the order flipped every repetition —
	// so slow drift (GC, thermal, scheduler) hits both equally. One sample
	// times a batch of consecutive generates so the window spans milliseconds
	// rather than one ~60µs run that a single GC pause can swamp, and the
	// verdict comes from a rank test over all samples, not from comparing two
	// noisy minima. PR 3 measured the two back-to-back with single-shot means
	// and recorded a phantom 0.96× "regression" between what were identical
	// single-core code paths.
	const discReps = 11
	const discBatch = 32
	// A fresh generator per sample: every Generate registers a new object
	// diagram in the model, so a long-lived generator accumulates state and
	// the variant measured later always pays more for its lookups. With a
	// fresh one per batch, every sample times 32 generates against an
	// identically-growing model.
	timeBatch := func(workers int) (int64, error) {
		_, svc, gen, err := base()
		if err != nil {
			return 0, err
		}
		start := time.Now()
		for j := 0; j < discBatch; j++ {
			if _, err := gen.Generate(svc, mp, fmt.Sprintf("d-%d", j), upsim.Options{DiscoveryWorkers: workers}); err != nil {
				return 0, err
			}
		}
		return time.Since(start).Nanoseconds() / discBatch, nil
	}
	b.SequentialNs, b.ConcurrentNs = math.MaxInt64, math.MaxInt64
	seqSamples := make([]int64, 0, discReps)
	concSamples := make([]int64, 0, discReps)
	for i := 0; i < discReps; i++ {
		first := func() (int64, error) { return timeBatch(1) }
		second := func() (int64, error) { return timeBatch(0) }
		if i%2 == 1 {
			first, second = second, first
		}
		dFirst, err := first()
		if err != nil {
			return err
		}
		dSecond, err := second()
		if err != nil {
			return err
		}
		dSeq, dConc := dFirst, dSecond
		if i%2 == 1 {
			dSeq, dConc = dSecond, dFirst
		}
		b.SequentialNs = min(b.SequentialNs, dSeq)
		b.ConcurrentNs = min(b.ConcurrentNs, dConc)
		seqSamples = append(seqSamples, dSeq)
		concSamples = append(concSamples, dConc)
	}
	// Round to two decimals: differences below 1% between best repetitions
	// are measurement noise, not code-path cost.
	if mannWhitneyDistinct(seqSamples, concSamples) {
		b.DiscoverySpeedup = math.Round(float64(b.SequentialNs)/float64(b.ConcurrentNs)*100) / 100
	} else {
		b.DiscoveryParity = true
		b.DiscoverySpeedup = 1
	}
	b.Regression = b.DiscoverySpeedup < 1

	// Singleflight: concurrent identical requests against a cold cache
	// compute exactly once.
	_, svc, gen, err = base()
	if err != nil {
		return err
	}
	c := upsim.NewCache(64)
	gen.WithCache(c)
	var wg sync.WaitGroup
	for i := 0; i < b.Goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, _ = gen.Generate(svc, mp, "flight", upsim.Options{})
		}()
	}
	wg.Wait()
	s := c.Stats()
	b.SingleflightMiss = s.Misses
	b.SingleflightReuse = s.Hits + s.Shared

	fmt.Printf("  cold generate (pipeline):   %s   (mean of %d fresh runs)\n", time.Duration(b.ColdNs), b.ColdReps)
	fmt.Printf("  warm generate (cache hit):  %s   (mean of %d repeats)\n", time.Duration(b.WarmNs), b.WarmReps)
	fmt.Printf("  warm speedup: %.0fx\n", b.Speedup)
	fmt.Printf("  step 7 discovery, sequential (workers=1): %s/generate (best of %d x %d runs)\n",
		time.Duration(b.SequentialNs), discReps, discBatch)
	discCol := fmt.Sprintf("%.2fx", b.DiscoverySpeedup)
	if b.DiscoveryParity {
		discCol = "~" + discCol + " (parity)"
	}
	fmt.Printf("  step 7 discovery, concurrent (auto):      %s/generate (%s, regression=%t)\n",
		time.Duration(b.ConcurrentNs), discCol, b.Regression)
	fmt.Printf("  singleflight: %d goroutines, %d computed, %d reused\n",
		b.Goroutines, b.SingleflightMiss, b.SingleflightReuse)
	fmt.Println("  (the USI diamond is tiny, so pool wins are modest here; the cache")
	fmt.Println("   win is structural — a hash lookup replaces the whole pipeline)")

	if benchOut != "" {
		data, err := json.MarshalIndent(b, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(benchOut, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("  wrote %s\n", benchOut)
	}
	return nil
}
