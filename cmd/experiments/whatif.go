package main

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"runtime"
	"time"

	"upsim/internal/depend"
	"upsim/internal/pathdisc"
	"upsim/internal/topology"
)

// whatifOut is where expWhatIf writes its machine-readable record; empty
// skips the file. main sets it from -whatif-out. The experiment shares the
// -smoke switch (dependSmoke) with expDepend.
var whatifOut string

// whatifFamily is one measured update path on one workload: patch (the
// in-place delta application of DESIGN.md §13) vs recompile (rebuilding the
// same compiled state from scratch), best-of-reps nanoseconds per delta.
// Parity follows the expPathdisc convention: statistically
// indistinguishable sample sets (two-sided Mann-Whitney U, alpha 0.05)
// report a speedup of exactly 1.
type whatifFamily struct {
	PatchNs     int64   `json:"patchNs"`
	RecompileNs int64   `json:"recompileNs"`
	Speedup     float64 `json:"speedup"`
	Parity      bool    `json:"parity,omitempty"`
	RunsPerRep  int     `json:"runsPerRep"`
}

// whatifWorkload is one row of the BENCH_whatif.json record: one (topology,
// service) pair measured under both update paths for each compiled layer
// and for the combined delta update the what-if engine performs.
type whatifWorkload struct {
	Topology string `json:"topology"`
	Nodes    int    `json:"nodes"`
	Edges    int    `json:"edges"`
	// PathSets is the number of minimal path sets of the registered service
	// (across all its atomic services), Components the interned universe
	// size (devices plus link components).
	PathSets   int `json:"servicePathSets"`
	Components int `json:"components"`
	// CSR measures the pathdisc layer: PatchRemoveEdge+PatchAddEdge (one
	// link flap) vs a full Compile of the graph.
	CSR whatifFamily `json:"csr"`
	// Kernel measures the depend layer: PatchRemoveComponent vs a full
	// Compile of the equivalently filtered structure.
	Kernel whatifFamily `json:"kernel"`
	// DeltaUpdate measures the combined per-delta work (both layers), the
	// figure the >=3x acceptance floor ranges over.
	DeltaUpdate whatifFamily `json:"deltaUpdate"`
}

// whatifBench is the BENCH_whatif.json schema. PatchFloorSpeedup is the
// worst combined patch-vs-recompile ratio across the fat-tree and mesh
// workloads (the acceptance floor is 3x); the ladder row is informational
// (its kernel is too small for the ratio to be meaningful). Regression
// flags any Mann-Whitney-confirmed slowdown in any measured family.
type whatifBench struct {
	GOMAXPROCS        int              `json:"gomaxprocs"`
	Reps              int              `json:"repsPerVariant"`
	WindowNs          int64            `json:"minSampleWindowNs"`
	Smoke             bool             `json:"smoke,omitempty"`
	Workloads         []whatifWorkload `json:"workloads"`
	PatchFloorSpeedup float64          `json:"patchFloorSpeedup"`
	Regression        bool             `json:"regression"`
}

// whatifStructure enumerates the service's paths on the compiled graph and
// builds the depend structure the way the live engine sees it: every path
// becomes one minimal path set holding its device names and link
// components. Several endpoint pairs act as the atomic services of one
// composite, so the kernel carries a realistic multi-stage set population.
func whatifStructure(csr *pathdisc.Compiled, pairs [][2]string, opts pathdisc.Options) (*depend.ServiceStructure, map[string]float64, []pathdisc.Path, error) {
	st := &depend.ServiceStructure{}
	avail := map[string]float64{}
	var first []pathdisc.Path
	for i, pr := range pairs {
		paths, _, err := csr.AllPaths(pr[0], pr[1], opts)
		if err != nil {
			return nil, nil, nil, err
		}
		if len(paths) == 0 {
			return nil, nil, nil, fmt.Errorf("no paths %s -> %s", pr[0], pr[1])
		}
		if i == 0 {
			first = paths
		}
		a := depend.AtomicStructure{Name: fmt.Sprintf("stage%d", i)}
		for _, p := range paths {
			ps := make(depend.PathSet, 0, 2*len(p.Nodes)-1)
			for j, n := range p.Nodes {
				ps = append(ps, n)
				avail[n] = 0.995
				if j > 0 {
					l := depend.LinkComponentID(p.Nodes[j-1], n, p.Edges[j-1])
					ps = append(ps, l)
					avail[l] = 0.9995
				}
			}
			a.PathSets = append(a.PathSets, ps)
		}
		st.AtomicServices = append(st.AtomicServices, a)
	}
	return st, avail, first, nil
}

// whatifVictim picks the component whose permanent failure the benchmark
// applies: a device on the first enumerated path that appears in some but
// not all path sets of every atomic service, so conditioning on its failure
// leaves the service alive (the steady-state patch case; death is the rare
// terminal event and is covered by the internal/whatif tests instead).
func whatifVictim(st *depend.ServiceStructure, path pathdisc.Path) (string, error) {
	for i := 1; i+1 < len(path.Nodes); i++ {
		c := path.Nodes[i]
		ok := true
		for _, a := range st.AtomicServices {
			hit := 0
			for _, ps := range a.PathSets {
				for _, m := range ps {
					if m == c {
						hit++
						break
					}
				}
			}
			if hit == len(a.PathSets) {
				ok = false // single point of failure: dropping it kills the stage
				break
			}
		}
		if ok {
			return c, nil
		}
	}
	return "", fmt.Errorf("no non-critical component on the first path")
}

// whatifFilter rebuilds the post-delta structure the way a cold
// recompilation would: every path set containing the failed component is
// gone. This is the input of the recompile variant, so both update paths
// produce the same compiled state.
func whatifFilter(st *depend.ServiceStructure, victim string) *depend.ServiceStructure {
	out := &depend.ServiceStructure{}
	for _, a := range st.AtomicServices {
		na := depend.AtomicStructure{Name: a.Name}
		for _, ps := range a.PathSets {
			keep := true
			for _, m := range ps {
				if m == victim {
					keep = false
					break
				}
			}
			if keep {
				na.PathSets = append(na.PathSets, ps)
			}
		}
		out.AtomicServices = append(out.AtomicServices, na)
	}
	return out
}

// expWhatIf benchmarks the incremental update path of the live-topology
// what-if engine against cold recompilation: after one topology delta (a
// link flap plus one component conditioned permanently failed), how long
// until the compiled CSR and the compiled dependability kernel are current
// again? The recompile baseline is deliberately minimal — it re-runs only
// the two Compile passes on already-known inputs, not path re-enumeration
// or UPSIM regeneration — so the reported speedups are a conservative floor
// on what the engine actually saves.
func expWhatIf() error {
	type workload struct {
		name    string
		floored bool // participates in the >=3x acceptance floor
		build   func() (*topology.Graph, error)
		pairs   [][2]string
		opts    pathdisc.Options
	}
	ws := []workload{
		{
			// The low-branching Section V-D regime: long rungs, few loops.
			name:  "ladder n=12",
			build: func() (*topology.Graph, error) { return topology.Ladder(12) },
			pairs: [][2]string{{"n0", "n23"}, {"n23", "n0"}},
			opts:  pathdisc.Options{},
		},
		{
			// The paper's deferred cloud case: cross-pod flows of one
			// composite service over the k=4 fat-tree, valley-free depth.
			name: "fat-tree k=4", floored: true,
			build: func() (*topology.Graph, error) { return topology.FatTree(4) },
			pairs: [][2]string{
				{"h0-0-0", "h3-1-1"}, {"h1-0-0", "h2-1-0"},
				{"h0-1-0", "h1-1-1"}, {"h2-0-1", "h3-0-0"},
			},
			opts: pathdisc.Options{MaxDepth: 6},
		},
		{
			// The O(n!) dense case, capped by depth like the engine does.
			name: "mesh n=8", floored: true,
			build: func() (*topology.Graph, error) { return topology.Mesh(8) },
			pairs: [][2]string{{"n0", "n7"}},
			opts:  pathdisc.Options{MaxDepth: 5},
		},
	}
	if !dependSmoke {
		ws = append(ws, workload{
			name: "fat-tree k=6", floored: true,
			build: func() (*topology.Graph, error) { return topology.FatTree(6) },
			pairs: [][2]string{
				{"h0-0-0", "h5-2-2"}, {"h1-1-0", "h4-0-1"},
				{"h2-2-1", "h3-1-2"}, {"h0-2-0", "h2-0-2"},
			},
			opts: pathdisc.Options{MaxDepth: 6},
		})
	}

	window := 20 * time.Millisecond
	b := whatifBench{
		GOMAXPROCS:        runtime.GOMAXPROCS(0),
		Reps:              9,
		Smoke:             dependSmoke,
		PatchFloorSpeedup: math.Inf(1),
	}
	if dependSmoke {
		b.Reps, window = 3, 2*time.Millisecond
	}
	b.WindowNs = window.Nanoseconds()
	fmt.Printf("  GOMAXPROCS=%d, best of %d interleaved reps, >=%s/sample\n",
		b.GOMAXPROCS, b.Reps, window)
	fmt.Printf("  %-14s %6s %6s %6s %6s %9s %9s %9s\n",
		"topology", "nodes", "edges", "sets", "comps", "csr x", "kernel x", "delta x")

	// The expDepend/expPathdisc methodology: one sample = GC + untimed
	// warm-up + a calibrated batch of timed runs; variants interleave with
	// alternating order; the best repetition represents each variant; rank
	// testing decides whether a delta is signal at all.
	timeIt := func(batch int, f func() error) (int64, error) {
		runtime.GC()
		if err := f(); err != nil {
			return 0, err
		}
		start := time.Now()
		for j := 0; j < batch; j++ {
			if err := f(); err != nil {
				return 0, err
			}
		}
		return time.Since(start).Nanoseconds() / int64(batch), nil
	}
	benchPair := func(patch, recompile func() error) (whatifFamily, error) {
		fam := whatifFamily{PatchNs: math.MaxInt64, RecompileNs: math.MaxInt64}
		calStart := time.Now()
		if err := recompile(); err != nil {
			return fam, err
		}
		batch := int(window / max(time.Since(calStart), time.Microsecond))
		fam.RunsPerRep = min(max(batch, 1), 512)
		var ps, rs []int64
		for i := 0; i < b.Reps; i++ {
			first, second := patch, recompile
			if i%2 == 1 {
				first, second = recompile, patch
			}
			d1, err := timeIt(fam.RunsPerRep, first)
			if err != nil {
				return fam, err
			}
			d2, err := timeIt(fam.RunsPerRep, second)
			if err != nil {
				return fam, err
			}
			dp, dr := d1, d2
			if i%2 == 1 {
				dp, dr = d2, d1
			}
			fam.PatchNs = min(fam.PatchNs, dp)
			fam.RecompileNs = min(fam.RecompileNs, dr)
			ps = append(ps, dp)
			rs = append(rs, dr)
		}
		if mannWhitneyDistinct(ps, rs) {
			fam.Speedup = math.Round(float64(fam.RecompileNs)/float64(fam.PatchNs)*100) / 100
		} else {
			fam.Parity = true
			fam.Speedup = 1
		}
		return fam, nil
	}

	for _, x := range ws {
		g, err := x.build()
		if err != nil {
			return err
		}
		csr := pathdisc.Compile(g)
		st, _, firstPaths, err := whatifStructure(csr, x.pairs, x.opts)
		if err != nil {
			return err
		}
		cs := depend.Compile(st)
		sets := 0
		for _, a := range st.AtomicServices {
			sets += len(a.PathSets)
		}

		// The flapping link: the middle hop of the first enumerated path.
		fp := firstPaths[0]
		mid := len(fp.Nodes) / 2
		la, lb, lid := fp.Nodes[mid-1], fp.Nodes[mid], fp.Edges[mid-1]

		// The permanently failed component, pre-dropped once so every timed
		// patch run measures the steady-state full-scan cost (same asymptotic
		// work, no state drift across runs), and pre-filtered once so the
		// recompile variant rebuilds the identical post-delta kernel.
		victim, err := whatifVictim(st, fp)
		if err != nil {
			return fmt.Errorf("%s: %w", x.name, err)
		}
		if _, err := cs.PatchRemoveComponent(victim); err != nil {
			return err
		}
		filtered := whatifFilter(st, victim)

		w := whatifWorkload{
			Topology:   x.name,
			Nodes:      g.NumNodes(),
			Edges:      g.NumEdges(),
			PathSets:   sets,
			Components: cs.NumComponents(),
		}

		patchCSR := func() error {
			if err := csr.PatchRemoveEdge(la, lb, lid); err != nil {
				return err
			}
			return csr.PatchAddEdge(la, lb, lid)
		}
		recompileCSR := func() error {
			pathdisc.Compile(g)
			return nil
		}
		patchKernel := func() error {
			_, err := cs.PatchRemoveComponent(victim)
			return err
		}
		recompileKernel := func() error {
			depend.Compile(filtered)
			return nil
		}

		if w.CSR, err = benchPair(patchCSR, recompileCSR); err != nil {
			return err
		}
		if w.Kernel, err = benchPair(patchKernel, recompileKernel); err != nil {
			return err
		}
		w.DeltaUpdate, err = benchPair(
			func() error {
				if err := patchCSR(); err != nil {
					return err
				}
				return patchKernel()
			},
			func() error {
				recompileCSR()
				recompileKernel()
				return nil
			},
		)
		if err != nil {
			return err
		}

		if x.floored {
			b.PatchFloorSpeedup = min(b.PatchFloorSpeedup, w.DeltaUpdate.Speedup)
		}
		for _, fam := range []whatifFamily{w.CSR, w.Kernel, w.DeltaUpdate} {
			b.Regression = b.Regression || (!fam.Parity && fam.Speedup < 1)
		}
		b.Workloads = append(b.Workloads, w)
		fmt.Printf("  %-14s %6d %6d %6d %6d %8.2fx %8.2fx %8.2fx\n",
			w.Topology, w.Nodes, w.Edges, w.PathSets, w.Components,
			w.CSR.Speedup, w.Kernel.Speedup, w.DeltaUpdate.Speedup)
	}

	if math.IsInf(b.PatchFloorSpeedup, 0) {
		b.PatchFloorSpeedup = 0
	}
	fmt.Printf("  patch floor (fat-tree/mesh rows, combined delta): %.2fx (acceptance floor 3x)\n",
		b.PatchFloorSpeedup)
	fmt.Printf("  Mann-Whitney-confirmed regression in any family: %t\n", b.Regression)
	fmt.Println("  (the recompile baseline excludes path re-enumeration and UPSIM")
	fmt.Println("   regeneration, so live speedups are strictly larger than reported)")

	if whatifOut != "" {
		data, err := json.MarshalIndent(b, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(whatifOut, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("  wrote %s\n", whatifOut)
	}
	return nil
}
