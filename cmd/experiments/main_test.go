package main

import (
	"io"
	"os"
	"strings"
	"testing"
)

// captureRun executes run(id) with stdout captured.
func captureRun(t *testing.T, id string) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	done := make(chan string, 1)
	go func() {
		data, _ := io.ReadAll(r)
		done <- string(data)
	}()
	runErr := run(id)
	w.Close()
	os.Stdout = old
	return <-done, runErr
}

// TestFastExperiments runs every experiment except the slow scaling sweep
// and checks for the expected artefact markers.
func TestFastExperiments(t *testing.T) {
	wants := map[string][]string{
		"f6":          {"<<Component>>", "MTBF:Real"},
		"f7":          {"<<NetworkDevice>>", "Communication"},
		"f8":          {"C6500", "61320", "Comp", "3000"},
		"f9":          {"31 instances, 31 links", "printS:Server -- d4:C2960"},
		"f10":         {"stage 5: [Send documents]"},
		"t1":          {"Request printing", "printS"},
		"f3":          {"<servicemapping>", "round trip: 5 pairs"},
		"context":     {"metamodel.uml", "paths.ctx"},
		"paths":       {"t1—e1—d1—c1—d4—printS", "2 paths"},
		"f11":         {"matches paper node set: true"},
		"f12":         {"matches paper node set: true"},
		"avail":       {"t1 → p2", "0.99"},
		"rbd":         {"[parallel]", "RBD model materialised"},
		"importance":  {"single points of failure", "Fussell–Vesely"},
		"qos":         {"throughput", "responsiveness"},
		"dynamicity":  {"user mobility", "perceived-infrastructure diff"},
		"sensitivity": {"dA/dMTBF", "Comp"},
		"cloud":       {"fat-tree k=4", "valley-free"},
		"cache":       {"warm speedup", "singleflight: 16 goroutines, 1 computed, 15 reused"},
	}
	for id, markers := range wants {
		id, markers := id, markers
		t.Run(id, func(t *testing.T) {
			out, err := captureRun(t, id)
			if err != nil {
				t.Fatalf("run(%s): %v", id, err)
			}
			for _, m := range markers {
				if !strings.Contains(out, m) {
					t.Errorf("experiment %s missing marker %q in:\n%s", id, m, out)
				}
			}
		})
	}
}

func TestUnknownExperiment(t *testing.T) {
	if _, err := captureRun(t, "nonsense"); err == nil {
		t.Error("unknown experiment should fail")
	}
}

func TestExperimentListComplete(t *testing.T) {
	seen := map[string]bool{}
	for _, e := range experimentsList() {
		if e.id == "" || e.title == "" || e.fn == nil {
			t.Errorf("experiment %+v incomplete", e)
		}
		if seen[e.id] {
			t.Errorf("duplicate experiment id %q", e.id)
		}
		seen[e.id] = true
	}
	if len(seen) != 25 {
		t.Errorf("experiments = %d, want 25", len(seen))
	}
}

// TestWhatIfSmoke runs the what-if benchmark in its CI shape: tiny windows,
// no artifact file. It guards the harness (workload construction, victim
// selection, both update paths), not the speedup figures.
func TestWhatIfSmoke(t *testing.T) {
	oldSmoke, oldOut := dependSmoke, whatifOut
	dependSmoke, whatifOut = true, ""
	defer func() { dependSmoke, whatifOut = oldSmoke, oldOut }()
	out, err := captureRun(t, "whatif")
	if err != nil {
		t.Fatalf("run(whatif): %v", err)
	}
	for _, m := range []string{"patch floor", "mesh n=8", "fat-tree k=4"} {
		if !strings.Contains(out, m) {
			t.Errorf("whatif output missing %q in:\n%s", m, out)
		}
	}
}

// TestWarmSmoke runs the warm-path benchmark in its CI shape: tiny windows,
// no artifact file. It guards the harness (corpus construction, both
// generate variants, the HTTP lane), not the speedup or allocation figures.
func TestWarmSmoke(t *testing.T) {
	oldSmoke, oldOut := dependSmoke, warmOut
	dependSmoke, warmOut = true, ""
	defer func() { dependSmoke, warmOut = oldSmoke, oldOut }()
	out, err := captureRun(t, "warm")
	if err != nil {
		t.Fatalf("run(warm): %v", err)
	}
	for _, m := range []string{"cold-generate floor", "fat-tree k=8 scatter", "/api/v1/availability"} {
		if !strings.Contains(out, m) {
			t.Errorf("warm output missing %q in:\n%s", m, out)
		}
	}
}

// TestKBestSmoke runs the k-best benchmark in its CI shape: tiny meshes, a
// shrunk hard limit, no artifact file. It guards the harness (both variants,
// the limit-trip check, the work-budget probe), not the latency figures.
func TestKBestSmoke(t *testing.T) {
	oldSmoke, oldOut := dependSmoke, kbestOut
	dependSmoke, kbestOut = true, ""
	defer func() { dependSmoke, kbestOut = oldSmoke, oldOut }()
	out, err := captureRun(t, "kbest")
	if err != nil {
		t.Fatalf("run(kbest): %v", err)
	}
	for _, m := range []string{"enumeration tripped hard limit", "k-best latency bound", "kind=kbest"} {
		if !strings.Contains(out, m) {
			t.Errorf("kbest output missing %q in:\n%s", m, out)
		}
	}
}
