package main

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"runtime"
	"time"

	"upsim"
	"upsim/internal/depend"
)

// dependOut is where expDepend writes its machine-readable record; empty
// skips the file. main sets it from -depend-out. dependSmoke (from -smoke)
// shrinks reps, sample counts and the workload list so CI can run the
// experiment as a sub-second sanity check.
var (
	dependOut   string
	dependSmoke bool
)

// dependFamily is one measured algorithm family on one workload: legacy
// (map/string sets) vs compiled (interned bitset kernel), best-of-reps
// nanoseconds per run. Parity means the two sample sets are statistically
// indistinguishable (two-sided Mann-Whitney U, alpha 0.05) and the speedup
// is reported as exactly 1, the same convention expPathdisc uses.
type dependFamily struct {
	LegacyNs   int64   `json:"legacyNs"`
	CompiledNs int64   `json:"compiledNs"`
	Speedup    float64 `json:"speedup"`
	Parity     bool    `json:"parity,omitempty"`
	RunsPerRep int     `json:"runsPerRep"`
}

// dependWorkload is one row of the BENCH_depend.json record: one service
// structure measured under both kernels across the four §VII algorithm
// families. InclusionExclusion is omitted where the service path-set count
// exceeds the 2^20-term budget (the legacy engine refuses those too).
type dependWorkload struct {
	Structure          string        `json:"structure"`
	Components         int           `json:"components"`
	Words              int           `json:"bitsetWords"`
	ServiceSets        int           `json:"servicePathSets"`
	CutSets            int           `json:"minimalCutSets"`
	InclusionExclusion *dependFamily `json:"inclusionExclusion,omitempty"`
	MinimalCuts        dependFamily  `json:"minimalCuts"`
	ExactFactoring     dependFamily  `json:"exactFactoring"`
	MonteCarlo         dependFamily  `json:"monteCarlo"`
	MCLegacyNsPerSamp  float64       `json:"mcLegacyNsPerSample"`
	MCCompNsPerSamp    float64       `json:"mcCompiledNsPerSample"`
}

// dependBench is the BENCH_depend.json schema. The floors mirror the
// acceptance criteria: >=3x on inclusion-exclusion and minimal-cut-set
// enumeration for structures with >=12 components, >=2x per Monte Carlo
// sample, and no Mann-Whitney-confirmed regression in any measured family.
type dependBench struct {
	GOMAXPROCS      int              `json:"gomaxprocs"`
	Reps            int              `json:"repsPerVariant"`
	WindowNs        int64            `json:"minSampleWindowNs"`
	MCSamples       int              `json:"mcSamplesPerRun"`
	Smoke           bool             `json:"smoke,omitempty"`
	Workloads       []dependWorkload `json:"workloads"`
	IEFloorSpeedup  float64          `json:"ieFloorSpeedup"`
	CutFloorSpeedup float64          `json:"cutFloorSpeedup"`
	MCFloorSpeedup  float64          `json:"mcFloorSpeedup"`
	Regression      bool             `json:"regression"`
}

// dependChain builds a synthetic series-of-redundant-stages structure:
// `atomics` services in series, each reachable over `width` parallel paths
// that share one hub component and continue over `tail` private components.
// It is the §VII shape dial: service path sets = width^atomics (the
// inclusion-exclusion load), minimal cut sets = atomics·(1 + tail^width)
// (the transversal load), components = atomics·(1 + width·tail) (the
// Monte Carlo and interning load).
func dependChain(atomics, width, tail int) (*depend.ServiceStructure, map[string]float64) {
	st := &depend.ServiceStructure{}
	avail := map[string]float64{}
	for i := 0; i < atomics; i++ {
		a := depend.AtomicStructure{Name: fmt.Sprintf("stage%d", i)}
		hub := fmt.Sprintf("s%dhub", i)
		avail[hub] = 0.999 - 0.001*float64(i%7)
		for j := 0; j < width; j++ {
			ps := depend.PathSet{hub}
			for k := 0; k < tail; k++ {
				c := fmt.Sprintf("s%dp%dc%d", i, j, k)
				ps = append(ps, c)
				avail[c] = 0.95 + 0.005*float64((i+j+k)%9)
			}
			a.PathSets = append(a.PathSets, ps)
		}
		st.AtomicServices = append(st.AtomicServices, a)
	}
	return st, avail
}

// expDepend benchmarks the compiled dependability kernel against the legacy
// map/string implementation across the §VII algorithm families, interleaved
// and summarised by the best repetition (the expPathdisc methodology).
func expDepend() error {
	type workload struct {
		name  string
		st    *depend.ServiceStructure
		avail map[string]float64
	}
	var ws []workload
	add := func(name string, atomics, width, tail int) {
		st, avail := dependChain(atomics, width, tail)
		ws = append(ws, workload{name, st, avail})
	}
	add("series a=2 w=3 t=2", 2, 3, 2) // 14 components,  9 service sets
	add("series a=2 w=4 t=2", 2, 4, 2) // 18 components, 16 service sets
	add("series a=2 w=4 t=3", 2, 4, 3) // 26 components, 16 sets, 164 cuts
	if !dependSmoke {
		add("wide   a=4 w=4 t=4", 4, 4, 4) // 68 components (2 words), IE skipped
		// The USI case study: the real pipeline output, 20 components.
		m, err := upsim.USIModel()
		if err != nil {
			return err
		}
		svc, err := upsim.USIPrintingService(m)
		if err != nil {
			return err
		}
		gen, err := upsim.NewGenerator(m, upsim.USIDiagramName)
		if err != nil {
			return err
		}
		res, err := gen.Generate(svc, upsim.USITableIMapping(), "depend-bench", upsim.Options{})
		if err != nil {
			return err
		}
		st, avail, err := upsim.StructureOf(res, upsim.ModelExact)
		if err != nil {
			return err
		}
		ws = append(ws, workload{"usi t1→p2", st, avail})
	}

	window := 20 * time.Millisecond
	b := dependBench{
		GOMAXPROCS:      runtime.GOMAXPROCS(0),
		Reps:            9,
		MCSamples:       20000,
		Smoke:           dependSmoke,
		IEFloorSpeedup:  math.Inf(1),
		CutFloorSpeedup: math.Inf(1),
		MCFloorSpeedup:  math.Inf(1),
	}
	if dependSmoke {
		b.Reps, b.MCSamples, window = 3, 2000, 2*time.Millisecond
	}
	b.WindowNs = window.Nanoseconds()
	fmt.Printf("  GOMAXPROCS=%d, best of %d interleaved reps, >=%s/sample, %d MC samples/run\n",
		b.GOMAXPROCS, b.Reps, window, b.MCSamples)
	fmt.Printf("  %-20s %5s %5s %5s %6s %8s %8s %8s %8s\n",
		"structure", "comps", "words", "sets", "cuts", "IE x", "cuts x", "exact x", "MC x")

	// One sample = collect the heap, one untimed warm-up, then `batch` timed
	// runs averaged into a per-run figure (see expPathdisc for why single-shot
	// timing of microsecond workloads is unsound).
	timeIt := func(batch int, f func() error) (int64, error) {
		runtime.GC()
		if err := f(); err != nil {
			return 0, err
		}
		start := time.Now()
		for j := 0; j < batch; j++ {
			if err := f(); err != nil {
				return 0, err
			}
		}
		return time.Since(start).Nanoseconds() / int64(batch), nil
	}
	// benchPair interleaves the two variants, flipping the order every
	// repetition so neither always inherits the other's just-warmed state,
	// and keeps the best repetition of each.
	benchPair := func(legacy, compiled func() error) (dependFamily, error) {
		fam := dependFamily{LegacyNs: math.MaxInt64, CompiledNs: math.MaxInt64}
		calStart := time.Now()
		if err := compiled(); err != nil {
			return fam, err
		}
		batch := int(window / max(time.Since(calStart), time.Microsecond))
		fam.RunsPerRep = min(max(batch, 1), 512)
		var ls, cs []int64
		for i := 0; i < b.Reps; i++ {
			first, second := legacy, compiled
			if i%2 == 1 {
				first, second = compiled, legacy
			}
			d1, err := timeIt(fam.RunsPerRep, first)
			if err != nil {
				return fam, err
			}
			d2, err := timeIt(fam.RunsPerRep, second)
			if err != nil {
				return fam, err
			}
			dl, dc := d1, d2
			if i%2 == 1 {
				dl, dc = d2, d1
			}
			fam.LegacyNs = min(fam.LegacyNs, dl)
			fam.CompiledNs = min(fam.CompiledNs, dc)
			ls = append(ls, dl)
			cs = append(cs, dc)
		}
		// Below-noise deltas round away rather than masquerading as signal;
		// indistinguishable sample sets report parity (speedup exactly 1).
		if mannWhitneyDistinct(ls, cs) {
			fam.Speedup = math.Round(float64(fam.LegacyNs)/float64(fam.CompiledNs)*100) / 100
		} else {
			fam.Parity = true
			fam.Speedup = 1
		}
		return fam, nil
	}

	for _, x := range ws {
		cs := depend.Compile(x.st)
		sets, err := x.st.ServicePathSets(0)
		if err != nil {
			return err
		}
		cuts, err := cs.MinimalCutSets(0)
		if err != nil {
			return err
		}
		w := dependWorkload{
			Structure:   x.name,
			Components:  cs.NumComponents(),
			Words:       cs.Words(),
			ServiceSets: len(sets),
			CutSets:     len(cuts),
		}
		avail := x.avail

		ieCol := "skip"
		if len(sets) <= 20 {
			fam, err := benchPair(
				func() error { _, err := x.st.ExactInclusionExclusion(avail, 0); return err },
				func() error { _, err := cs.ExactInclusionExclusion(avail, 0); return err },
			)
			if err != nil {
				return err
			}
			w.InclusionExclusion = &fam
			ieCol = fmt.Sprintf("%.2fx", fam.Speedup)
			if w.Components >= 12 {
				b.IEFloorSpeedup = min(b.IEFloorSpeedup, fam.Speedup)
			}
			b.Regression = b.Regression || (!fam.Parity && fam.Speedup < 1)
		}

		w.MinimalCuts, err = benchPair(
			func() error { _, err := x.st.MinimalCutSets(0); return err },
			func() error { _, err := cs.MinimalCutSets(0); return err },
		)
		if err != nil {
			return err
		}
		// The cut-set floor measures the enumeration algorithm, so it ranges
		// over the rows where the transversal expansion is combinatorial
		// (>=100 minimal cuts). Structures with a handful of cuts finish in
		// microseconds under either kernel — those rows are overhead-bound
		// and fall under the "parity allowed elsewhere" clause.
		if w.Components >= 12 && w.CutSets >= 100 {
			b.CutFloorSpeedup = min(b.CutFloorSpeedup, w.MinimalCuts.Speedup)
		}
		b.Regression = b.Regression || (!w.MinimalCuts.Parity && w.MinimalCuts.Speedup < 1)

		w.ExactFactoring, err = benchPair(
			func() error { _, err := x.st.Exact(avail); return err },
			func() error { _, err := cs.Exact(avail); return err },
		)
		if err != nil {
			return err
		}
		b.Regression = b.Regression || (!w.ExactFactoring.Parity && w.ExactFactoring.Speedup < 1)

		w.MonteCarlo, err = benchPair(
			func() error { _, _, err := x.st.MonteCarlo(avail, b.MCSamples, 7); return err },
			func() error { _, _, err := cs.MonteCarlo(avail, b.MCSamples, 7); return err },
		)
		if err != nil {
			return err
		}
		w.MCLegacyNsPerSamp = math.Round(float64(w.MonteCarlo.LegacyNs)/float64(b.MCSamples)*100) / 100
		w.MCCompNsPerSamp = math.Round(float64(w.MonteCarlo.CompiledNs)/float64(b.MCSamples)*100) / 100
		b.MCFloorSpeedup = min(b.MCFloorSpeedup, w.MonteCarlo.Speedup)
		b.Regression = b.Regression || (!w.MonteCarlo.Parity && w.MonteCarlo.Speedup < 1)

		b.Workloads = append(b.Workloads, w)
		fmt.Printf("  %-20s %5d %5d %5d %6d %8s %7.2fx %7.2fx %7.2fx\n",
			w.Structure, w.Components, w.Words, w.ServiceSets, w.CutSets,
			ieCol, w.MinimalCuts.Speedup, w.ExactFactoring.Speedup, w.MonteCarlo.Speedup)
	}

	// A floor with no qualifying row (possible only if the workload list is
	// trimmed) records 0, which JSON can carry and any checker flags.
	for _, f := range []*float64{&b.IEFloorSpeedup, &b.CutFloorSpeedup, &b.MCFloorSpeedup} {
		if math.IsInf(*f, 0) {
			*f = 0
		}
	}
	fmt.Printf("  floors (>=12 components): IE %.2fx (floor 3x), cut sets %.2fx (floor 3x, combinatorial rows), Monte Carlo %.2fx (floor 2x)\n",
		b.IEFloorSpeedup, b.CutFloorSpeedup, b.MCFloorSpeedup)
	fmt.Printf("  Mann-Whitney-confirmed regression in any family: %t\n", b.Regression)
	fmt.Println("  (interning pays most where sets are re-compared combinatorially: the")
	fmt.Println("   2^n inclusion-exclusion unions and the transversal dominance checks)")

	if dependOut != "" {
		data, err := json.MarshalIndent(b, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(dependOut, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("  wrote %s\n", dependOut)
	}
	return nil
}
