package main

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"runtime"
	"sort"
	"testing"
	"time"

	"upsim/internal/pathdisc"
	"upsim/internal/topology"
)

// pathdiscOut is where expPathdisc writes its machine-readable record; empty
// (the test default) skips the file. main sets it from -pathdisc-out.
var pathdiscOut string

// pathdiscWorkload is one row of the BENCH_pathdisc.json record: one
// (topology, endpoint pair) workload measured under the map-based kernel,
// the compiled CSR kernel, and the gated parallel CSR variant. Durations
// are best-of-reps nanoseconds per full enumeration.
type pathdiscWorkload struct {
	Topology        string  `json:"topology"`
	Nodes           int     `json:"nodes"`
	Edges           int     `json:"edges"`
	Branching       float64 `json:"branching"`
	Paths           int     `json:"paths"`
	LegacyNs        int64   `json:"legacyNs"`
	CompiledNs      int64   `json:"compiledNs"`
	Speedup         float64 `json:"speedup"`
	LegacyAllocs    float64 `json:"legacyAllocsPerOp"`
	CompiledAllocs  float64 `json:"compiledAllocsPerOp"`
	ParallelNs      int64   `json:"csrParallelNs"`
	ParallelMode    string  `json:"parallelMode"`
	ParallelSpeedup float64 `json:"parallelSpeedup"`
	// ParallelParity is true when the sequential and parallel sample sets are
	// statistically indistinguishable (two-sided Mann-Whitney U, alpha 0.05),
	// in which case ParallelSpeedup is reported as exactly 1 — the same
	// convention benchstat uses when it prints "~" instead of a delta.
	ParallelParity bool `json:"parallelParity"`
	// RunsPerRep is the calibrated batch size: enough consecutive runs that
	// one timed sample spans at least pathdiscWindow of work.
	RunsPerRep int `json:"runsPerRep"`
}

// mannWhitneyDistinct reports whether two timing sample sets are
// distinguishable at alpha = 0.05 by a two-sided Mann-Whitney U test (normal
// approximation with midranks for ties). Comparing raw best-of figures
// between near-identical code paths manufactures phantom regressions out of
// scheduler noise; a rank test over the whole sample set is how benchstat
// decides whether to print a delta at all.
func mannWhitneyDistinct(a, b []int64) bool {
	type obs struct {
		v     int64
		fromA bool
	}
	all := make([]obs, 0, len(a)+len(b))
	for _, v := range a {
		all = append(all, obs{v, true})
	}
	for _, v := range b {
		all = append(all, obs{v, false})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].v < all[j].v })
	// Midranks: tied values share the mean of the ranks they occupy.
	ranks := make([]float64, len(all))
	for i := 0; i < len(all); {
		j := i
		for j < len(all) && all[j].v == all[i].v {
			j++
		}
		mid := float64(i+j+1) / 2 // ranks are 1-based
		for k := i; k < j; k++ {
			ranks[k] = mid
		}
		i = j
	}
	var rankSumA float64
	for i, o := range all {
		if o.fromA {
			rankSumA += ranks[i]
		}
	}
	n1, n2 := float64(len(a)), float64(len(b))
	u := rankSumA - n1*(n1+1)/2
	mean := n1 * n2 / 2
	sigma := math.Sqrt(n1 * n2 * (n1 + n2 + 1) / 12)
	if sigma == 0 {
		return false
	}
	z := (u - mean) / sigma
	return math.Abs(z) > 1.96
}

// pathdiscBench is the BENCH_pathdisc.json schema.
type pathdiscBench struct {
	GOMAXPROCS         int                `json:"gomaxprocs"`
	BranchingThreshold float64            `json:"parallelBranchingThreshold"`
	Reps               int                `json:"repsPerVariant"`
	WindowNs           int64              `json:"minSampleWindowNs"`
	Workloads          []pathdiscWorkload `json:"workloads"`
	// DenseMeshSpeedup is the compiled-vs-legacy speedup on the densest mesh
	// workload (the acceptance floor is 3x).
	DenseMeshSpeedup float64 `json:"denseMeshSpeedup"`
	// MinParallelSpeedup is the worst parallel-vs-sequential ratio across all
	// workloads; the gated parallel variant must hold the 1.0x floor.
	MinParallelSpeedup float64 `json:"minParallelSpeedup"`
	// Regression flags MinParallelSpeedup < 1 explicitly, mirroring the cache
	// record's field.
	Regression bool `json:"regression"`
}

// expPathdisc is the scalability benchmark of the compiled kernel (Section
// V-D workloads): mesh (the O(n!) dense case), ladder (the low-branching
// "few loops" case) and random connected graphs of growing density, each
// measured interleaved and summarised by the best repetition.
func expPathdisc() error {
	type workload struct {
		name     string
		g        *topology.Graph
		src, dst string
	}
	var ws []workload
	for _, n := range []int{6, 7, 8} {
		g, err := topology.Mesh(n)
		if err != nil {
			return err
		}
		ws = append(ws, workload{fmt.Sprintf("mesh n=%d", n), g, "n0", fmt.Sprintf("n%d", n-1)})
	}
	for _, n := range []int{8, 12, 16} {
		g, err := topology.Ladder(n)
		if err != nil {
			return err
		}
		ws = append(ws, workload{fmt.Sprintf("ladder rungs=%d", n), g, "n0", fmt.Sprintf("n%d", 2*n-1)})
	}
	for _, c := range []struct {
		n int
		p float64
	}{{24, 0.04}, {30, 0.04}} {
		g, err := topology.RandomConnected(c.n, c.p, 7)
		if err != nil {
			return err
		}
		ws = append(ws, workload{fmt.Sprintf("random n=%d loops=%.2f", c.n, c.p), g, "n0", fmt.Sprintf("n%d", c.n-1)})
	}

	// pathdiscWindow is the minimum span of one timed sample. Timing a single
	// 10-microsecond enumeration is unsound — one GC pause or scheduler blip
	// inside the window swamps the signal — so small workloads are batched
	// until a sample covers at least this much real work, the same strategy
	// testing.B uses to pick b.N.
	const pathdiscWindow = 20 * time.Millisecond
	b := pathdiscBench{
		GOMAXPROCS:         runtime.GOMAXPROCS(0),
		BranchingThreshold: pathdisc.ParallelBranchingThreshold,
		Reps:               9,
		WindowNs:           pathdiscWindow.Nanoseconds(),
		DenseMeshSpeedup:   math.Inf(1),
		MinParallelSpeedup: math.Inf(1),
	}
	fmt.Printf("  GOMAXPROCS=%d, fan-out threshold: branching >= %.1f, best of %d interleaved reps, >=%s/sample\n",
		b.GOMAXPROCS, b.BranchingThreshold, b.Reps, pathdiscWindow)
	fmt.Printf("  %-22s %6s %6s %9s %11s %11s %8s %9s %9s %8s %-9s\n",
		"topology", "nodes", "edges", "paths", "legacy", "compiled", "speedup", "allocs", "allocs'", "par x", "par mode")

	// One sample = collect the heap, one untimed warm-up run (runtime.GC
	// purges the kernel's sync.Pool, so the first run after it re-allocates
	// scratch), then `batch` consecutive timed runs averaged into a per-run
	// figure. Mid-window collections are driven by allocation rate, which is
	// identical across variants of the same workload, so a >=2ms window
	// amortises them fairly. Single-shot timing instead let one GC pause land
	// inside the same variant's slot on every repetition, a bias best-of
	// cannot remove (observed as a stable phantom 0.74x between two runs of
	// the *same* sequential code path).
	timeIt := func(batch int, f func() error) (int64, error) {
		runtime.GC()
		if err := f(); err != nil {
			return 0, err
		}
		start := time.Now()
		for j := 0; j < batch; j++ {
			if err := f(); err != nil {
				return 0, err
			}
		}
		return time.Since(start).Nanoseconds() / int64(batch), nil
	}
	for _, x := range ws {
		c := pathdisc.Compile(x.g)
		opts := pathdisc.Options{}
		calStart := time.Now()
		paths, _, err := c.AllPaths(x.src, x.dst, opts)
		if err != nil {
			return err
		}
		// Calibrate the batch from this first (coldest, so pessimistic) run.
		batch := int(pathdiscWindow / max(time.Since(calStart), time.Microsecond))
		batch = min(max(batch, 1), 512)
		w := pathdiscWorkload{
			Topology:  x.name,
			Nodes:     x.g.NumNodes(),
			Edges:     x.g.NumEdges(),
			Branching: math.Round(c.Branching()*100) / 100,
			Paths:     len(paths),
			LegacyNs:  math.MaxInt64, CompiledNs: math.MaxInt64, ParallelNs: math.MaxInt64,
			ParallelMode: "fallback-sequential",
			RunsPerRep:   batch,
		}
		if c.ParallelEligible(x.src, opts) {
			w.ParallelMode = "fan-out"
		}
		// Interleave the three variants so drift hits them equally; keep the
		// best repetition of each (see cache.go for the rationale). The
		// csr/parallel order flips every repetition so neither variant always
		// inherits the other's just-warmed allocator state.
		runCSR := func() error { _, _, err := c.AllPaths(x.src, x.dst, opts); return err }
		runPar := func() error { _, _, err := c.AllPathsParallel(x.src, x.dst, opts, 0); return err }
		csrSamples := make([]int64, 0, b.Reps)
		parSamples := make([]int64, 0, b.Reps)
		for i := 0; i < b.Reps; i++ {
			d, err := timeIt(batch, func() error { _, _, err := pathdisc.AllPaths(x.g, x.src, x.dst, opts); return err })
			if err != nil {
				return err
			}
			w.LegacyNs = min(w.LegacyNs, d)
			first, second := runCSR, runPar
			if i%2 == 1 {
				first, second = runPar, runCSR
			}
			dFirst, err := timeIt(batch, first)
			if err != nil {
				return err
			}
			dSecond, err := timeIt(batch, second)
			if err != nil {
				return err
			}
			dCSR, dPar := dFirst, dSecond
			if i%2 == 1 {
				dCSR, dPar = dSecond, dFirst
			}
			w.CompiledNs = min(w.CompiledNs, dCSR)
			w.ParallelNs = min(w.ParallelNs, dPar)
			csrSamples = append(csrSamples, dCSR)
			parSamples = append(parSamples, dPar)
		}
		w.LegacyAllocs = testing.AllocsPerRun(3, func() {
			_, _, _ = pathdisc.AllPaths(x.g, x.src, x.dst, opts)
		})
		w.CompiledAllocs = testing.AllocsPerRun(3, func() {
			_, _, _ = c.AllPaths(x.src, x.dst, opts)
		})
		// Speedups below the noise floor of a best-of comparison (<1%) round
		// away rather than masquerading as signal.
		w.Speedup = math.Round(float64(w.LegacyNs)/float64(w.CompiledNs)*100) / 100
		// The sequential/parallel comparison only earns a delta when the two
		// sample sets actually differ; on a single-core box they are the same
		// code path and the test reports parity.
		if mannWhitneyDistinct(csrSamples, parSamples) {
			w.ParallelSpeedup = math.Round(float64(w.CompiledNs)/float64(w.ParallelNs)*100) / 100
		} else {
			w.ParallelParity = true
			w.ParallelSpeedup = 1
		}
		b.Workloads = append(b.Workloads, w)
		b.DenseMeshSpeedup = w.Speedup // meshes come first, densest last of them
		b.MinParallelSpeedup = min(b.MinParallelSpeedup, w.ParallelSpeedup)
		parCol := fmt.Sprintf("%.2fx", w.ParallelSpeedup)
		if w.ParallelParity {
			parCol = "~" + parCol
		}
		fmt.Printf("  %-22s %6d %6d %9d %11s %11s %7.2fx %9.0f %9.0f %8s %-9s\n",
			w.Topology, w.Nodes, w.Edges, w.Paths,
			time.Duration(w.LegacyNs).Round(time.Microsecond),
			time.Duration(w.CompiledNs).Round(time.Microsecond),
			w.Speedup, w.LegacyAllocs, w.CompiledAllocs, parCol, w.ParallelMode)
	}
	// DenseMeshSpeedup must reflect the mesh rows, not whatever ran last.
	for _, w := range b.Workloads {
		if w.Topology == "mesh n=8" {
			b.DenseMeshSpeedup = w.Speedup
		}
	}
	b.Regression = b.MinParallelSpeedup < 1
	fmt.Printf("  dense mesh speedup: %.2fx (floor 3x); worst parallel ratio: %.2fx (floor 1x, regression=%t)\n",
		b.DenseMeshSpeedup, b.MinParallelSpeedup, b.Regression)
	fmt.Println("  (the compiled kernel wins on every shape; fan-out needs both cores")
	fmt.Println("   and branching, so low-degree ladders always take the sequential path)")

	if pathdiscOut != "" {
		data, err := json.MarshalIndent(b, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(pathdiscOut, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("  wrote %s\n", pathdiscOut)
	}
	return nil
}
