package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"regexp"
	"strings"
	"testing"
	"time"
)

// startDaemon runs the daemon on a free port and returns its base URL plus
// a cancel func; the returned channel yields run's error after shutdown.
func startDaemon(t *testing.T, cfg config) (string, context.CancelFunc, <-chan error) {
	t.Helper()
	cfg.addr = "127.0.0.1:0"
	if cfg.drain == 0 {
		cfg.drain = 5 * time.Second
	}
	if cfg.logLevel == "" {
		cfg.logLevel = "error" // keep test output quiet
	}
	ctx, cancel := context.WithCancel(context.Background())
	ready := make(chan string, 1)
	errc := make(chan error, 1)
	go func() { errc <- run(ctx, cfg, ready) }()
	select {
	case addr := <-ready:
		return "http://" + addr, cancel, errc
	case err := <-errc:
		cancel()
		t.Fatalf("daemon failed to start: %v", err)
		return "", nil, nil
	}
}

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, string(body)
}

// TestGracefulShutdown verifies the lifecycle satellite: the daemon serves,
// then exits cleanly (no error) when the signal context is cancelled, and
// an in-flight request still completes during the drain.
func TestGracefulShutdown(t *testing.T) {
	base, cancel, errc := startDaemon(t, config{})
	if code, _ := get(t, base+"/healthz"); code != http.StatusOK {
		t.Fatalf("healthz = %d", code)
	}

	// Hold a request in flight across the shutdown: send the request line
	// and part of the headers over a raw connection (the server has read
	// bytes, so the connection counts as active), cancel, then finish the
	// request — the drain must let it complete.
	conn, err := net.Dial("tcp", strings.TrimPrefix(base, "http://"))
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := io.WriteString(conn, "GET /metrics HTTP/1.1\r\nHost: upsimd-test\r\n"); err != nil {
		t.Fatal(err)
	}
	time.Sleep(100 * time.Millisecond) // let the server enter the read
	cancel()
	time.Sleep(100 * time.Millisecond) // let Shutdown begin
	if _, err := io.WriteString(conn, "Connection: close\r\n\r\n"); err != nil {
		t.Fatalf("finishing in-flight request: %v", err)
	}
	status, err := bufio.NewReader(conn).ReadString('\n')
	if err != nil || !strings.Contains(status, "200") {
		t.Errorf("in-flight request during drain: status %q, err %v", status, err)
	}
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("run returned %v, want nil", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not shut down")
	}
}

func TestPprofFlagGating(t *testing.T) {
	// Without -pprof the profile routes are absent...
	base, cancel, errc := startDaemon(t, config{})
	if code, _ := get(t, base+"/debug/pprof/"); code != http.StatusNotFound {
		t.Errorf("pprof without flag = %d, want 404", code)
	}
	// ...but /metrics and /debug/vars are always on.
	if code, body := get(t, base+"/metrics"); code != http.StatusOK || !strings.Contains(body, "upsim_http_requests_total") {
		t.Errorf("metrics = %d: %.120s", code, body)
	}
	if code, _ := get(t, base+"/debug/vars"); code != http.StatusOK {
		t.Errorf("debug/vars = %d", code)
	}
	cancel()
	<-errc

	// With -pprof the index serves.
	base, cancel, errc = startDaemon(t, config{pprof: true})
	defer func() { cancel(); <-errc }()
	code, body := get(t, base+"/debug/pprof/")
	if code != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Errorf("pprof index = %d: %.120s", code, body)
	}
}

func TestBadLogLevel(t *testing.T) {
	err := run(context.Background(), config{addr: "127.0.0.1:0", logLevel: "shouting"}, nil)
	if err == nil || !strings.Contains(fmt.Sprint(err), "log-level") {
		t.Errorf("err = %v", err)
	}
}

// TestCacheMetricsExposed verifies the -cache-size wiring end to end: two
// identical generate requests against the daemon, then /metrics reports the
// cache hit.
func TestCacheMetricsExposed(t *testing.T) {
	base, cancel, errc := startDaemon(t, config{cacheSize: 4, batchWorkers: 2})
	defer func() { cancel(); <-errc }()

	_, modelXML := get(t, base+"/api/v1/casestudy/model")
	_, mappingXML := get(t, base+"/api/v1/casestudy/mapping")
	req, err := json.Marshal(map[string]any{
		"modelXml":   modelXML,
		"diagram":    "infrastructure",
		"service":    "printing",
		"mappingXml": mappingXML,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		resp, err := http.Post(base+"/api/v1/generate", "application/json", bytes.NewReader(req))
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("generate %d = %d: %.200s", i, resp.StatusCode, body)
		}
	}
	_, metrics := get(t, base+"/metrics")
	for _, name := range []string{
		"upsim_cache_hits_total", "upsim_cache_misses_total",
		"upsim_cache_evictions_total", "upsim_cache_singleflight_shared_total",
	} {
		if !strings.Contains(metrics, name) {
			t.Errorf("metrics lack %s", name)
		}
	}
	hit := regexp.MustCompile(`(?m)^upsim_cache_hits_total ([0-9]+)$`).FindStringSubmatch(metrics)
	if hit == nil || hit[1] == "0" {
		t.Errorf("warm generate did not count a cache hit:\n%s", metrics)
	}
}
