// Command upsimd serves the UPSIM generation and analysis pipeline over
// HTTP (see internal/server for the API).
//
// Usage:
//
//	upsimd [-addr :8080] [-cache-size 128] [-warm-size 128] [-batch-workers 0]
//	       [-prewarm] [-pprof] [-drain 10s] [-log-level info] [-log-json]
//
// Caching:
//
// The generation-backed routes (generate, availability, qos, batch) share
// one content-addressed result cache of -cache-size entries (LRU); repeated
// identical requests skip the pipeline and concurrent identical requests
// compute once. Watch upsim_cache_*_total on GET /metrics. The warm
// byte-level lane (repeated analysis bodies replayed without JSON decode)
// holds its responses in a dedicated LRU of -warm-size entries; watch
// upsim_server_warm_{hits_total,entries,capacity}. With -prewarm (default
// on) a generator for the built-in case-study model is parked in the pool
// at boot, so the first request against it skips model import and kernel
// compilation.
//
// Observability:
//
//	GET /metrics       Prometheus text exposition (always on)
//	GET /debug/vars    expvar JSON snapshot (always on)
//	GET /debug/pprof/  net/http/pprof profiles (only with -pprof)
//
// The daemon logs one structured line per request (log/slog) and shuts
// down gracefully on SIGINT/SIGTERM: the listener closes, in-flight
// requests get -drain to complete, then the process exits.
//
// Try it:
//
//	curl localhost:8080/healthz
//	curl localhost:8080/api/v1/casestudy/model > usi.xml
//	curl localhost:8080/api/v1/casestudy/mapping > t1.xml
//	curl -s -X POST localhost:8080/api/v1/generate -d "$(jq -n \
//	    --rawfile m usi.xml --rawfile p t1.xml \
//	    '{modelXml:$m, diagram:"infrastructure", service:"printing", mappingXml:$p}')"
//	curl -s -X POST localhost:8080/api/v1/lint -d "$(jq -n \
//	    --rawfile m usi.xml --rawfile p t1.xml \
//	    '{modelXml:$m, diagram:"infrastructure", service:"printing", mappingXml:$p}')"
//	curl localhost:8080/metrics
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"upsim/internal/obs"
	"upsim/internal/server"
)

// config carries the daemon flags; a struct so tests can drive run directly.
type config struct {
	addr         string
	cacheSize    int
	warmSize     int
	batchWorkers int
	prewarm      bool
	pprof        bool
	drain        time.Duration
	logLevel     string
	logJSON      bool
}

func main() {
	var cfg config
	flag.StringVar(&cfg.addr, "addr", ":8080", "listen address")
	flag.IntVar(&cfg.cacheSize, "cache-size", 0, "generation cache capacity in entries (0 = default 128)")
	flag.IntVar(&cfg.warmSize, "warm-size", 0, "warm-lane response cache capacity in entries (0 = default 128)")
	flag.IntVar(&cfg.batchWorkers, "batch-workers", 0, "worker pool bound for /api/v1/batch (0 = GOMAXPROCS)")
	flag.BoolVar(&cfg.prewarm, "prewarm", true, "park a ready case-study generator in the pool at boot")
	flag.BoolVar(&cfg.pprof, "pprof", false, "expose net/http/pprof under /debug/pprof/")
	flag.DurationVar(&cfg.drain, "drain", 10*time.Second, "graceful-shutdown drain timeout for in-flight requests")
	flag.StringVar(&cfg.logLevel, "log-level", "info", "log level: debug, info, warn or error")
	flag.BoolVar(&cfg.logJSON, "log-json", false, "log JSON records instead of text")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, cfg, nil); err != nil {
		fmt.Fprintln(os.Stderr, "upsimd:", err)
		os.Exit(1)
	}
}

// setupLogger installs the flag-configured slog logger process-wide.
func setupLogger(cfg config) (*slog.Logger, error) {
	var level slog.Level
	if err := level.UnmarshalText([]byte(cfg.logLevel)); err != nil {
		return nil, fmt.Errorf("bad -log-level %q: %w", cfg.logLevel, err)
	}
	opts := &slog.HandlerOptions{Level: level}
	var h slog.Handler
	if cfg.logJSON {
		h = slog.NewJSONHandler(os.Stderr, opts)
	} else {
		h = slog.NewTextHandler(os.Stderr, opts)
	}
	l := slog.New(h)
	obs.SetLogger(l)
	return l, nil
}

// run serves until ctx is cancelled, then drains gracefully. If ready is
// non-nil, the bound address is sent on it once the listener is up (tests
// pass ":0" and wait here).
func run(ctx context.Context, cfg config, ready chan<- string) error {
	log, err := setupLogger(cfg)
	if err != nil {
		return err
	}

	mux := http.NewServeMux()
	mux.Handle("/", server.LoggingMiddleware(server.NewWithConfig(server.Config{
		CacheSize:    cfg.cacheSize,
		WarmSize:     cfg.warmSize,
		BatchWorkers: cfg.batchWorkers,
		Prewarm:      cfg.prewarm,
	})))
	if cfg.pprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}

	srv := &http.Server{
		Handler:           mux,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      60 * time.Second,
		BaseContext:       func(net.Listener) context.Context { return ctx },
	}

	ln, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		return err
	}
	log.Info("upsimd listening", "addr", ln.Addr().String(), "pprof", cfg.pprof)
	if ready != nil {
		ready <- ln.Addr().String()
	}

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}

	log.Info("shutting down, draining in-flight requests", "timeout", cfg.drain)
	sctx, cancel := context.WithTimeout(context.Background(), cfg.drain)
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil {
		log.Error("drain timeout exceeded, closing", "err", err)
		_ = srv.Close()
		return err
	}
	// Serve has returned ErrServerClosed by now; a real error surfaced above.
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	log.Info("shutdown complete")
	return nil
}
