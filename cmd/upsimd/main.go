// Command upsimd serves the UPSIM generation and analysis pipeline over
// HTTP (see internal/server for the API).
//
// Usage:
//
//	upsimd [-addr :8080]
//
// Try it:
//
//	curl localhost:8080/healthz
//	curl localhost:8080/api/v1/casestudy/model > usi.xml
//	curl localhost:8080/api/v1/casestudy/mapping > t1.xml
//	curl -s -X POST localhost:8080/api/v1/generate -d "$(jq -n \
//	    --rawfile m usi.xml --rawfile p t1.xml \
//	    '{modelXml:$m, diagram:"infrastructure", service:"printing", mappingXml:$p}')"
package main

import (
	"flag"
	"log"
	"net/http"
	"time"

	"upsim/internal/server"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	flag.Parse()
	srv := &http.Server{
		Addr:              *addr,
		Handler:           server.New(),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      60 * time.Second,
	}
	log.Printf("upsimd listening on %s", *addr)
	log.Fatal(srv.ListenAndServe())
}
